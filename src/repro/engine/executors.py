"""Pluggable batch executors for the evaluation engine.

A batch is a list of *groups*, each group pairing one recorded trace
with the configurations to simulate on it. Three executors are
provided:

- :class:`SerialExecutor` — runs everything in-process, in order;
- :class:`ProcessExecutor` — fans groups out over a
  :class:`concurrent.futures.ProcessPoolExecutor`;
- :class:`FabricExecutor` — publishes groups as content-keyed tasks on
  the distributed fabric's durable queue (:mod:`repro.fabric`) and
  collects the results from the shared store as leased workers — other
  processes, other hosts — finish them.

Simulation is pure — a run is fully determined by (config, trace,
decoder library) and the driver owns all randomness — so every executor
returns bit-identical results; only wall-clock differs. The engine relies
on that to make ``jobs``/``executor`` pure throughput knobs.

On fork-capable platforms the process executor avoids re-pickling traces
on every task: whenever the trace registry has grown it refreshes its
pool, first snapshotting the registry into a module global that the
forked workers inherit copy-on-write; tasks then carry only the trace
key. The engine records a batch's traces while grouping it — before the
executor runs — so steady-state batches (the tuning loop) reuse one
pool and send keys only. On spawn platforms the snapshot never reaches
the workers, so the pool is created once and traces ship inline.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor

from repro.isa.decoder import decoder_library
from repro.simulator.simulator import SnipeSim, simulate_batch

#: Per-executor trace snapshots inherited by forked workers.
_TRACE_SNAPSHOTS: dict = {}

_executor_ids = itertools.count(1)


def _simulate_chunk(payload):
    """Worker entry point: simulate one chunk of configs on one trace."""
    configs, snapshot_token, key, trace, decoder_cls = payload
    if trace is None:
        trace = _TRACE_SNAPSHOTS[snapshot_token][key]
    decoder = decoder_cls()
    if len(configs) >= 2:
        # Multi-config chunks share one columnar pass (bit-identical to
        # the per-config loop; see repro.simulator.simulate_batch).
        return simulate_batch(trace, list(configs), decoder=decoder)
    return [SnipeSim(config, decoder=decoder).run(trace) for config in configs]


class SerialExecutor:
    """In-process, in-order execution (the ``jobs=1`` path).

    Multi-config groups — a race step's alive candidates over one
    instance — are *fused*: one shared columnar pass drives every
    config's core (``simulate_batch``) instead of K independent trace
    iterations. Single-config groups keep the plain ``SnipeSim.run``
    reference path. Both produce bit-identical stats; ``fuses`` tells
    the engine to account the batching in its telemetry.
    """

    name = "serial"
    jobs = 1
    #: Multi-config groups run as one shared pass (engine telemetry).
    fuses = True

    def run(self, groups, decoder, registry_items=None) -> list:
        """Simulate every group in order; returns per-group stats lists."""
        out = []
        for configs, _key, trace in groups:
            if len(configs) >= 2:
                out.append(simulate_batch(trace, list(configs), decoder=decoder))
            else:
                out.append([SnipeSim(config, decoder=decoder).run(trace) for config in configs])
        return out

    def close(self) -> None:
        """Nothing to release."""


class ProcessExecutor:
    """Parallel execution over a process pool (the ``jobs>1`` path)."""

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("ProcessExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = jobs
        self._pool = None
        self._token = next(_executor_ids)
        self._snapshot_keys: frozenset = frozenset()
        try:
            self._ctx = multiprocessing.get_context("fork")
            self._fork = True
        except ValueError:
            self._ctx = multiprocessing.get_context()
            self._fork = False

    # ------------------------------------------------------------------
    def _ensure_pool(self, registry_items) -> None:
        """(Re)create the pool when new traces appeared since the snapshot.

        The snapshot global must be updated *before* the pool exists:
        workers fork lazily at first submit and inherit whatever the
        module global holds at that moment.
        """
        if self._pool is not None:
            if not self._fork:
                return  # workers never see the snapshot; nothing to refresh
            if frozenset(dict(registry_items or [])) == self._snapshot_keys:
                return
        registry = dict(registry_items or [])
        self.close()
        if self._fork:
            _TRACE_SNAPSHOTS[self._token] = registry
        self._snapshot_keys = frozenset(registry)
        self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=self._ctx)

    def _chunks(self, configs: list) -> list:
        n = min(self.jobs, len(configs))
        base, extra = divmod(len(configs), n)
        out, start = [], 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            out.append(configs[start:start + size])
            start += size
        return out

    def run(self, groups, decoder, registry_items=None) -> list:
        """Fan the groups over the pool; identical results to serial."""
        self._ensure_pool(registry_items)
        decoder_cls = type(decoder)
        # Workers rebuild the decoder as decoder_cls(); prove parent-side
        # that this reproduces the same library, so a stateful/parameterised
        # decoder fails loudly here instead of silently diverging from the
        # serial path.
        try:
            reconstructible = decoder_library(decoder_cls()) == decoder_library(decoder)
        except TypeError:
            reconstructible = False
        if not reconstructible:
            raise ValueError(
                f"{decoder_cls.__name__} is not reconstructible as "
                f"{decoder_cls.__name__}(); the process executor needs "
                "stateless per-class decoders — use jobs=1"
            )
        futures = []  # (group_index, future)
        for gi, (configs, key, trace) in enumerate(groups):
            in_snapshot = self._fork and key in self._snapshot_keys
            ship = None if in_snapshot else trace
            for chunk in self._chunks(list(configs)):
                payload = (chunk, self._token, key, ship, decoder_cls)
                futures.append((gi, self._pool.submit(_simulate_chunk, payload)))
        out = [[] for _ in groups]
        # Collect in submission order: deterministic regardless of which
        # worker finishes first.
        for gi, future in futures:
            out[gi].extend(future.result())
        return out

    def close(self) -> None:
        """Shut the pool down and release the trace snapshot."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        # Unpin the snapshot traces; _ensure_pool re-registers on reuse.
        _TRACE_SNAPSHOTS.pop(self._token, None)

    def __del__(self):  # best-effort; engines call close() explicitly
        try:
            self.close()
        except Exception:
            pass


class FabricExecutor:
    """Distributed execution over the fabric's durable job queue.

    ``run`` plans each batch into content-keyed tasks (deduplicated
    against the store a second time at planning — another driver may
    have finished a key since the engine's own cache check), enqueues
    them idempotently, then polls until every key is ``done`` in the
    queue and reads the stats back from the store. Concurrency lives
    entirely outside this process: throughput is however many
    ``repro worker`` processes share the store file.

    Parameters
    ----------
    store:
        The engine's :class:`~repro.store.resultstore.ResultStore`;
        SQLite-backed (the queue shares its file) or HTTP-backed (the
        queue speaks the same experiment service, see
        :mod:`repro.service`).
    poll:
        Seconds between completion polls.
    timeout:
        Optional cap on the seconds one batch may wait before a
        ``TimeoutError`` (``None`` waits indefinitely — matching a
        durable queue whose workers may come and go).
    queue:
        Optional pre-built :class:`~repro.fabric.api.TaskQueue`
        (testing); by default one is derived from the store backend.
    """

    name = "fabric"
    #: Driver-side parallelism is meaningless here; workers decide.
    jobs = 1
    #: Results land in the store on the worker side; the engine must
    #: not write them back a second time.
    persists = True

    def __init__(self, store, poll: float = 0.05, timeout: float = None,
                 queue=None) -> None:
        kind = getattr(getattr(store, "backend", None), "kind", None)
        if queue is not None:
            self.queue = queue
        elif kind == "sqlite":
            from repro.fabric.queue import JobQueue

            self.queue = JobQueue(store.backend.path)
        elif kind == "http":
            from repro.service.client import HttpQueue

            self.queue = HttpQueue(store.backend.url,
                                   token=store.backend.token)
        else:
            raise ValueError(
                "the fabric executor needs a SQLite-backed store "
                "(EvaluationEngine(store=...) with a file path) or an "
                "experiment-service URL — the job queue lives with the "
                "results workers share"
            )
        self.store = store
        self.poll = float(poll)
        self.timeout = timeout

    def run(self, groups, decoder, registry_items=None) -> list:
        """Publish the batch as fabric tasks; block until workers finish."""
        from repro.fabric.scheduler import plan_groups
        from repro.fabric.tasks import check_decoder_portable

        check_decoder_portable(decoder)
        plan = plan_groups(groups, decoder, store=self.store)
        self.queue.enqueue(plan.tasks, submitted_by="engine")
        outstanding = {key for key, _kind, _payload in plan.tasks}
        # A fresh submission is fresh intent: keys that dead-lettered in
        # some earlier run get their claim budget back instead of
        # poisoning this batch on the first poll. (A task that dies
        # again *during* this batch still raises below.)
        self.queue.requeue_dead(keys=outstanding)
        stats_by_key = {key: self.store.get_sim(key) for key in plan.store_hits}
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        while outstanding:
            states = self.queue.states(outstanding)
            finished = [key for key in outstanding if states.get(key) == "done"]
            for key in finished:
                stats = self.store.get_sim(key)
                if stats is None:
                    raise RuntimeError(
                        f"fabric task {key!r} is marked done but its result "
                        "is missing from the store; the queue and store "
                        "files have diverged"
                    )
                stats_by_key[key] = stats
                outstanding.discard(key)
            dead = [key for key in outstanding if states.get(key) == "dead"]
            if dead:
                details = "; ".join(
                    f"{key}: {self.queue.errors(key)}" for key in dead[:3]
                )
                raise RuntimeError(
                    f"{len(dead)} fabric task(s) dead-lettered after retries "
                    f"— {details}"
                )
            if not outstanding:
                break
            if deadline is not None and time.monotonic() > deadline:
                counts = self.queue.counts()
                raise TimeoutError(
                    f"fabric batch incomplete after {self.timeout:.0f}s "
                    f"({len(outstanding)} tasks outstanding, queue={counts}); "
                    "are any `repro worker` processes running against this "
                    "store?"
                )
            time.sleep(self.poll)

        # Reassemble per-group stats in the engine's submission order.
        out = []
        for configs, tkey, _trace in groups:
            workload, scale, ovr_token = tkey
            group_stats = []
            for config in configs:
                key = self._key_for(config, workload, scale, dict(ovr_token), decoder)
                group_stats.append(stats_by_key[key])
            out.append(group_stats)
        return out

    @staticmethod
    def _key_for(config, workload, scale, overrides, decoder) -> str:
        from repro.engine.keys import sim_key
        from repro.store.serialize import encode_key

        return encode_key(sim_key(config, workload, scale, overrides, decoder))

    def close(self) -> None:
        """Close the queue connection (the store belongs to the engine)."""
        self.queue.close()


def make_executor(jobs: int = 1, kind: str = None, store=None):
    """Executor factory: ``kind`` overrides the jobs-derived default."""
    if kind is None:
        kind = "serial" if jobs <= 1 else "process"
    if kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(jobs)  # raises for jobs < 2
    if kind == "fabric":
        return FabricExecutor(store)  # raises without a sqlite/http store
    raise ValueError(
        f"unknown executor kind {kind!r}; use 'serial', 'process' or 'fabric'"
    )
