"""Pluggable batch executors for the evaluation engine.

A batch is a list of *groups*, each group pairing one recorded trace
with the configurations to simulate on it. Three executors are
provided:

- :class:`SerialExecutor` — runs everything in-process, in order;
- :class:`ProcessExecutor` — fans groups out over a
  :class:`concurrent.futures.ProcessPoolExecutor`;
- :class:`FabricExecutor` — publishes groups as content-keyed tasks on
  the distributed fabric's durable queue (:mod:`repro.fabric`) and
  collects the results from the shared store as leased workers — other
  processes, other hosts — finish them.

Simulation is pure — a run is fully determined by (config, trace,
decoder library) and the driver owns all randomness — so every executor
returns bit-identical results; only wall-clock differs. The engine relies
on that to make ``jobs``/``executor`` pure throughput knobs.

Besides the blocking ``run(groups, ...)`` call, every executor speaks a
non-blocking protocol the async race scheduler drives:

- ``submit(groups, decoder, registry_items) -> handle`` starts a batch;
- ``poll(handle) -> {(group_idx, config_idx): stats}`` returns slots
  completed since the previous poll (possibly empty, never blocking on
  unfinished work);
- ``cancel(handle, slots)`` withdraws not-yet-delivered slots
  best-effort (work already executing simply completes and is ignored).

The serial executor "streams" by completing one group per poll; the
process executor reports whichever futures finished; the fabric
executor maps the protocol onto queue enqueue + streaming state polls,
with queue-level ``cancel`` retracting unclaimed speculation.

On fork-capable platforms the process executor avoids re-pickling traces
on every task: whenever the trace registry has grown it refreshes its
pool, first snapshotting the registry into a module global that the
forked workers inherit copy-on-write; tasks then carry only the trace
key. The engine records a batch's traces while grouping it — before the
executor runs — so steady-state batches (the tuning loop) reuse one
pool and send keys only. On spawn platforms the snapshot never reaches
the workers, so the pool is created once and traces ship inline.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor

from repro.isa.decoder import decoder_library
from repro.simulator.simulator import SnipeSim, simulate_batch

#: Per-executor trace snapshots inherited by forked workers.
_TRACE_SNAPSHOTS: dict = {}

_executor_ids = itertools.count(1)


def _simulate_chunk(payload):
    """Worker entry point: simulate one chunk of configs on one trace."""
    configs, snapshot_token, key, trace, decoder_cls = payload
    if trace is None:
        trace = _TRACE_SNAPSHOTS[snapshot_token][key]
    decoder = decoder_cls()
    if len(configs) >= 2:
        # Multi-config chunks share one columnar pass (bit-identical to
        # the per-config loop; see repro.simulator.simulate_batch).
        return simulate_batch(trace, list(configs), decoder=decoder)
    return [SnipeSim(config, decoder=decoder).run(trace) for config in configs]


class SerialExecutor:
    """In-process, in-order execution (the ``jobs=1`` path).

    Multi-config groups — a race step's alive candidates over one
    instance — are *fused*: one shared columnar pass drives every
    config's core (``simulate_batch``) instead of K independent trace
    iterations. Single-config groups keep the plain ``SnipeSim.run``
    reference path. Both produce bit-identical stats; ``fuses`` tells
    the engine to account the batching in its telemetry.
    """

    name = "serial"
    jobs = 1
    #: Multi-config groups run as one shared pass (engine telemetry).
    fuses = True

    def run(self, groups, decoder, registry_items=None) -> list:
        """Simulate every group in order; returns per-group stats lists."""
        out = []
        for configs, _key, trace in groups:
            if len(configs) >= 2:
                out.append(simulate_batch(trace, list(configs), decoder=decoder))
            else:
                out.append([SnipeSim(config, decoder=decoder).run(trace) for config in configs])
        return out

    # -- non-blocking protocol -----------------------------------------
    def submit(self, groups, decoder, registry_items=None):
        """Start a batch; work happens lazily, one group per poll."""
        return _SerialHandle(groups=[(list(configs), key, trace)
                                     for configs, key, trace in groups],
                             decoder=decoder)

    def poll(self, handle) -> dict:
        """Complete the next unfinished group; ``{}`` once exhausted.

        Per-config stats are bit-identical to :meth:`run` — fusing a
        subset of a group changes nothing (see ``simulate_batch``) —
        so cancelled slots can simply be skipped.
        """
        out: dict = {}
        while handle.next_group < len(handle.groups) and not out:
            gi = handle.next_group
            handle.next_group += 1
            configs, _key, trace = handle.groups[gi]
            live = [(ci, config) for ci, config in enumerate(configs)
                    if (gi, ci) not in handle.cancelled]
            if not live:
                continue
            if len(live) >= 2:
                stats = simulate_batch(trace, [c for _ci, c in live],
                                       decoder=handle.decoder)
            else:
                stats = [SnipeSim(config, decoder=handle.decoder).run(trace)
                         for _ci, config in live]
            for (ci, _config), s in zip(live, stats):
                out[(gi, ci)] = s
        return out

    def cancel(self, handle, slots) -> None:
        """Skip not-yet-simulated slots (work is lazy, so this is exact)."""
        handle.cancelled.update(slots)

    def close(self) -> None:
        """Nothing to release."""


class _SerialHandle:
    """In-flight state of one :meth:`SerialExecutor.submit` batch."""

    def __init__(self, groups, decoder):
        self.groups = groups
        self.decoder = decoder
        self.next_group = 0
        self.cancelled: set = set()


class ProcessExecutor:
    """Parallel execution over a process pool (the ``jobs>1`` path)."""

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError("ProcessExecutor needs jobs >= 2; use SerialExecutor")
        self.jobs = jobs
        self._pool = None
        self._token = next(_executor_ids)
        self._snapshot_keys: frozenset = frozenset()
        try:
            self._ctx = multiprocessing.get_context("fork")
            self._fork = True
        except ValueError:
            self._ctx = multiprocessing.get_context()
            self._fork = False

    # ------------------------------------------------------------------
    def _ensure_pool(self, registry_items) -> None:
        """(Re)create the pool when new traces appeared since the snapshot.

        The snapshot global must be updated *before* the pool exists:
        workers fork lazily at first submit and inherit whatever the
        module global holds at that moment.
        """
        if self._pool is not None:
            if not self._fork:
                return  # workers never see the snapshot; nothing to refresh
            if frozenset(dict(registry_items or [])) == self._snapshot_keys:
                return
        registry = dict(registry_items or [])
        self.close()
        if self._fork:
            _TRACE_SNAPSHOTS[self._token] = registry
        self._snapshot_keys = frozenset(registry)
        self._pool = ProcessPoolExecutor(max_workers=self.jobs, mp_context=self._ctx)

    def _chunks(self, configs: list) -> list:
        n = min(self.jobs, len(configs))
        base, extra = divmod(len(configs), n)
        out, start = [], 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            out.append(configs[start:start + size])
            start += size
        return out

    def _check_reconstructible(self, decoder) -> type:
        """Validate the decoder survives the worker round-trip.

        Workers rebuild the decoder as ``decoder_cls()``; prove
        parent-side that this reproduces the same library, so a
        stateful/parameterised decoder fails loudly here instead of
        silently diverging from the serial path.
        """
        decoder_cls = type(decoder)
        try:
            reconstructible = decoder_library(decoder_cls()) == decoder_library(decoder)
        except TypeError:
            reconstructible = False
        if not reconstructible:
            raise ValueError(
                f"{decoder_cls.__name__} is not reconstructible as "
                f"{decoder_cls.__name__}(); the process executor needs "
                "stateless per-class decoders — use jobs=1"
            )
        return decoder_cls

    def _submit_futures(self, groups, decoder_cls) -> list:
        """Fan chunks over the pool; returns ``[future, gi, [ci...], done]``."""
        entries = []
        for gi, (configs, key, trace) in enumerate(groups):
            configs = list(configs)
            in_snapshot = self._fork and key in self._snapshot_keys
            ship = None if in_snapshot else trace
            start = 0
            for chunk in self._chunks(configs):
                slots = list(range(start, start + len(chunk)))
                start += len(chunk)
                payload = (chunk, self._token, key, ship, decoder_cls)
                entries.append([self._pool.submit(_simulate_chunk, payload),
                                gi, slots, False])
        return entries

    def run(self, groups, decoder, registry_items=None) -> list:
        """Fan the groups over the pool; identical results to serial."""
        self._ensure_pool(registry_items)
        decoder_cls = self._check_reconstructible(decoder)
        entries = self._submit_futures(groups, decoder_cls)
        out = [[] for _ in groups]
        # Collect in submission order: deterministic regardless of which
        # worker finishes first.
        for future, gi, _slots, _done in entries:
            out[gi].extend(future.result())
        return out

    # -- non-blocking protocol -----------------------------------------
    def submit(self, groups, decoder, registry_items=None):
        """Start a batch on the pool; results stream back via :meth:`poll`."""
        self._ensure_pool(registry_items)
        decoder_cls = self._check_reconstructible(decoder)
        return self._submit_futures(
            [(list(configs), key, trace) for configs, key, trace in groups],
            decoder_cls)

    def poll(self, handle) -> dict:
        """Slots of every future finished since the previous poll."""
        out: dict = {}
        for entry in handle:
            future, gi, slots, done = entry
            if done or not future.done():
                continue
            entry[3] = True
            if future.cancelled():
                continue
            for ci, stats in zip(slots, future.result()):
                out[(gi, ci)] = stats
        return out

    def cancel(self, handle, slots) -> None:
        """Cancel futures whose slots are all withdrawn (best-effort).

        A future already running cannot be cancelled; its results are
        delivered and the caller ignores them.
        """
        drop = set(slots)
        for entry in handle:
            future, gi, chunk_slots, done = entry
            if done:
                continue
            if all((gi, ci) in drop for ci in chunk_slots):
                if future.cancel():
                    entry[3] = True

    def close(self) -> None:
        """Shut the pool down and release the trace snapshot."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        # Unpin the snapshot traces; _ensure_pool re-registers on reuse.
        _TRACE_SNAPSHOTS.pop(self._token, None)

    def __del__(self):  # best-effort; engines call close() explicitly
        try:
            self.close()
        except Exception:
            pass


class FabricExecutor:
    """Distributed execution over the fabric's durable job queue.

    ``run`` plans each batch into content-keyed tasks (deduplicated
    against the store a second time at planning — another driver may
    have finished a key since the engine's own cache check), enqueues
    them idempotently, then polls until every key is ``done`` in the
    queue and reads the stats back from the store. Concurrency lives
    entirely outside this process: throughput is however many
    ``repro worker`` processes share the store file.

    Parameters
    ----------
    store:
        The engine's :class:`~repro.store.resultstore.ResultStore`;
        SQLite-backed (the queue shares its file) or HTTP-backed (the
        queue speaks the same experiment service, see
        :mod:`repro.service`).
    poll:
        Seconds between completion polls.
    timeout:
        Optional cap on the seconds one batch may wait before a
        ``TimeoutError`` (``None`` waits indefinitely — matching a
        durable queue whose workers may come and go).
    queue:
        Optional pre-built :class:`~repro.fabric.api.TaskQueue`
        (testing); by default one is derived from the store backend.
    """

    name = "fabric"
    #: Driver-side parallelism is meaningless here; workers decide.
    jobs = 1
    #: Results land in the store on the worker side; the engine must
    #: not write them back a second time.
    persists = True

    def __init__(self, store, poll: float = 0.05, timeout: float = None,
                 queue=None) -> None:
        kind = getattr(getattr(store, "backend", None), "kind", None)
        if queue is not None:
            self.queue = queue
        elif kind == "sqlite":
            from repro.fabric.queue import JobQueue

            self.queue = JobQueue(store.backend.path)
        elif kind == "http":
            from repro.service.client import HttpQueue

            self.queue = HttpQueue(store.backend.url,
                                   token=store.backend.token)
        else:
            raise ValueError(
                "the fabric executor needs a SQLite-backed store "
                "(EvaluationEngine(store=...) with a file path) or an "
                "experiment-service URL — the job queue lives with the "
                "results workers share"
            )
        self.store = store
        self.poll_interval = float(poll)
        #: Ceiling for the adaptive poll backoff: consecutive empty
        #: polls double the sleep from ``poll_interval`` up to here, so
        #: an idle driver stops hammering the queue/server; any
        #: delivered result resets the pace to ``poll_interval``.
        self.poll_cap = max(self.poll_interval, 1.0)
        self.timeout = timeout
        #: Keys enqueued by this executor and not yet observed done —
        #: overlapping speculative submits plan against this set so
        #: each key crosses the wire once.
        self._in_flight: set = set()

    def run(self, groups, decoder, registry_items=None) -> list:
        """Publish the batch as fabric tasks; block until workers finish."""
        groups = [(list(configs), tkey, trace) for configs, tkey, trace in groups]
        handle = self.submit(groups, decoder, registry_items)
        results: dict = {}
        expected = sum(len(configs) for configs, _tkey, _trace in groups)
        pace = self.poll_interval
        while len(results) < expected:
            got = self.poll(handle)
            if got:
                results.update(got)
                pace = self.poll_interval
                continue
            time.sleep(pace)
            pace = min(pace * 2, self.poll_cap)

        # Reassemble per-group stats in the engine's submission order.
        return [[results[(gi, ci)] for ci in range(len(configs))]
                for gi, (configs, _tkey, _trace) in enumerate(groups)]

    # -- non-blocking protocol -----------------------------------------
    def submit(self, groups, decoder, registry_items=None):
        """Plan, deduplicate and enqueue a batch; poll for completions."""
        from repro.fabric.scheduler import plan_groups
        from repro.fabric.tasks import check_decoder_portable

        check_decoder_portable(decoder)
        groups = [(list(configs), tkey, trace) for configs, tkey, trace in groups]
        plan = plan_groups(groups, decoder, store=self.store,
                           in_flight=self._in_flight)
        if plan.tasks:
            self.queue.enqueue(plan.tasks, submitted_by="engine")
        enqueued = {key for key, _kind, _payload in plan.tasks}
        self._in_flight.update(enqueued)
        # A fresh submission is fresh intent: keys that dead-lettered in
        # some earlier run get their claim budget back instead of
        # poisoning this batch on the first poll. (A task that dies
        # again *during* this batch still raises below.) In-flight keys
        # are included: a cancelled-then-rewanted key may have died
        # unobserved between batches.
        revive = enqueued | set(plan.in_flight)
        if revive:
            self.queue.requeue_dead(keys=revive)

        slot_key: dict = {}
        for gi, (configs, tkey, _trace) in enumerate(groups):
            workload, scale, ovr_token = tkey
            for ci, config in enumerate(configs):
                slot_key[(gi, ci)] = self._key_for(
                    config, workload, scale, dict(ovr_token), decoder)
        store_hits = set(plan.store_hits)
        return _FabricHandle(
            slot_key=slot_key,
            ready=store_hits,
            outstanding=set(slot_key.values()) - store_hits,
            deadline=(None if self.timeout is None
                      else time.monotonic() + self.timeout),
        )

    def poll(self, handle) -> dict:
        """One queue-state pass; never sleeps (the caller paces polls).

        Result read-backs are batched through ``get_sims`` — one store
        query (one HTTP request on the wire transport) per poll however
        many keys finished, instead of one per key.
        """
        if handle.ready:
            fetched = self.store.get_sims(sorted(handle.ready))
            for key, stats in fetched.items():
                if stats is None:
                    raise RuntimeError(
                        f"fabric task {key!r} was planned as a store hit but "
                        "its result is missing from the store; the store "
                        "contents changed mid-batch"
                    )
                handle.results[key] = stats
            handle.ready.clear()

        if handle.outstanding:
            states = self.queue.states(handle.outstanding)
            finished = [key for key in handle.outstanding
                        if states.get(key) == "done"]
            fetched = self.store.get_sims(finished) if finished else {}
            for key in finished:
                stats = fetched.get(key)
                if stats is None:
                    raise RuntimeError(
                        f"fabric task {key!r} is marked done but its result "
                        "is missing from the store; the queue and store "
                        "files have diverged"
                    )
                handle.results[key] = stats
                handle.outstanding.discard(key)
                self._in_flight.discard(key)
            dead = [key for key in handle.outstanding
                    if states.get(key) == "dead"]
            if dead:
                details = "; ".join(
                    f"{key}: {self.queue.errors(key)}" for key in dead[:3]
                )
                raise RuntimeError(
                    f"{len(dead)} fabric task(s) dead-lettered after retries "
                    f"— {details}"
                )
            if handle.outstanding and handle.deadline is not None \
                    and time.monotonic() > handle.deadline:
                counts = self.queue.counts()
                raise TimeoutError(
                    f"fabric batch incomplete after {self.timeout:.0f}s "
                    f"({len(handle.outstanding)} tasks outstanding, "
                    f"queue={counts}); are any `repro worker` processes "
                    "running against this store?"
                )

        out: dict = {}
        for slot, key in handle.slot_key.items():
            if slot not in handle.delivered and key in handle.results:
                out[slot] = handle.results[key]
                handle.delivered.add(slot)
        return out

    def cancel(self, handle, slots) -> None:
        """Retract unclaimed queue rows for fully-withdrawn keys.

        Only keys none of whose remaining slots are wanted are
        cancelled; the queue deletes rows still ``queued`` and reports
        which — those drop out of the in-flight set so a later submit
        re-enqueues them if needed. Leased/done keys simply complete
        into the store (content-addressed, so never wasted twice).
        """
        drop = set(slots)
        wanted: set = set()
        for slot, key in handle.slot_key.items():
            if slot not in drop and slot not in handle.delivered:
                wanted.add(key)
        targets = sorted({handle.slot_key[slot] for slot in drop
                          if slot in handle.slot_key}
                         - wanted - set(handle.results))
        handle.delivered.update(drop)
        if not targets:
            return
        removed = set(self.queue.cancel(targets))
        for key in targets:
            # Stop watching the key either way: a still-leased task
            # finishes into the store on its own (or dies unobserved —
            # its row is revived if the key is ever wanted again).
            handle.outstanding.discard(key)
            if key in removed:
                self._in_flight.discard(key)

    @staticmethod
    def _key_for(config, workload, scale, overrides, decoder) -> str:
        from repro.engine.keys import sim_key
        from repro.store.serialize import encode_key

        return encode_key(sim_key(config, workload, scale, overrides, decoder))

    def close(self) -> None:
        """Close the queue connection (the store belongs to the engine)."""
        self.queue.close()


class _FabricHandle:
    """In-flight state of one :meth:`FabricExecutor.submit` batch."""

    def __init__(self, slot_key, ready, outstanding, deadline):
        self.slot_key = slot_key      # (gi, ci) -> content key
        self.ready = ready            # store-hit keys, fetched first poll
        self.outstanding = outstanding  # keys awaited from the queue
        self.deadline = deadline
        self.results: dict = {}       # key -> stats
        self.delivered: set = set()   # slots already returned/cancelled


def make_executor(jobs: int = 1, kind: str = None, store=None):
    """Executor factory: ``kind`` overrides the jobs-derived default."""
    if kind is None:
        kind = "serial" if jobs <= 1 else "process"
    if kind == "serial":
        return SerialExecutor()
    if kind == "process":
        return ProcessExecutor(jobs)  # raises for jobs < 2
    if kind == "fabric":
        return FabricExecutor(store)  # raises without a sqlite/http store
    raise ValueError(
        f"unknown executor kind {kind!r}; use 'serial', 'process' or 'fabric'"
    )
