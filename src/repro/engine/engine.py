"""The unified evaluation engine.

The paper's methodology is an experiment-execution problem: tens of
thousands of (configuration, workload) trials raced under irace, each
trial a simulator run compared against a hardware measurement. The
:class:`EvaluationEngine` is the one place those trials execute for every
layer of this reproduction — the irace tuner, the validation campaign,
the near-optimum worst-case search, and the CLI all submit work here.

It owns:

- a :class:`~repro.engine.tracestore.TraceStore`, so each workload trace
  is recorded at most once per (scale, overrides);
- a content-addressed result cache keyed by
  ``(config hash via SimConfig.flatten(), workload, scale, overrides,
  decoder)`` covering simulator runs *and* hardware ground-truth
  measurements;
- a batch API (:meth:`simulate_batch` / :meth:`evaluate_batch`) with
  pluggable executors — serial, or a process pool selected by ``jobs``;
- unified trial telemetry (requested vs unique trials, cache hits).

Parallel and serial execution produce bit-identical results: simulation
is pure and all randomness stays in the drivers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executors import make_executor
from repro.engine.keys import hw_key, sim_key
from repro.engine.tracestore import TraceStore
from repro.isa.decoder import Decoder
from repro.tuning.cost import cpi_error


@dataclass
class EngineTelemetry:
    """Unified trial accounting across all engine consumers."""

    #: Trials submitted (including ones answered from the cache).
    requested_trials: int = 0
    #: Trials that actually ran the simulator (cache misses).
    unique_trials: int = 0
    #: Trials answered from the result cache (or deduplicated in-batch).
    sim_cache_hits: int = 0
    #: Hardware measurements taken / answered from the cache.
    hw_measurements: int = 0
    hw_cache_hits: int = 0
    #: Cache hits served by the persistent store (counted inside
    #: ``sim_cache_hits``/``hw_cache_hits`` as well).
    store_hits: int = 0
    #: Trials executed inside a fused multi-config batch — K candidates
    #: driven down one shared columnar trace pass (a race step's alive
    #: set) instead of K independent passes.
    batched_trials: int = 0
    #: Dynamic instructions simulated through shared passes: for each
    #: fused group of K configs over an N-instruction trace, K*N. The
    #: observable form of the batching win — without fusion this work
    #: would have been K separate trace iterations.
    shared_pass_instructions: int = 0

    def hit_rate(self) -> float:
        """Fraction of requested trials answered without simulating."""
        if not self.requested_trials:
            return 0.0
        return self.sim_cache_hits / self.requested_trials

    def summary(self) -> str:
        """One-line human-readable account (used by the CLI)."""
        text = (
            f"{self.requested_trials} trials requested, "
            f"{self.unique_trials} unique simulations "
            f"({self.hit_rate():.0%} cache hits), "
            f"{self.hw_measurements} hardware measurements"
        )
        if self.store_hits:
            text += f", {self.store_hits} store hits"
        if self.batched_trials:
            text += (
                f", {self.batched_trials} batched trials "
                f"({self.shared_pass_instructions} shared-pass instructions)"
            )
        return text


class BatchTicket:
    """In-flight state of one :meth:`EvaluationEngine.submit_batch`.

    Opaque to callers: hand it back to ``poll_batch``/``cancel_batch``.
    """

    def __init__(self, pairs):
        self.pairs = pairs
        self.ready: dict = {}            # index -> stats (cache hits)
        self.pending: dict = {}          # key -> [indices]
        self.key_of: dict = {}           # index -> key
        self.slot_of: dict = {}          # key -> (gi, ci)
        self.key_at: dict = {}           # (gi, ci) -> key
        self.resolved: set = set()       # keys whose stats arrived
        self.cancelled: set = set()      # withdrawn pair indices
        self.cancelled_slots: set = set()
        self.handle = None               # executor handle (non-blocking)
        self.exec_groups = None          # run()-fallback stash

    def done(self) -> bool:
        """True when nothing more can arrive from a poll."""
        if self.ready:
            return False
        live = [key for key, idx_list in self.pending.items()
                if key not in self.resolved
                and any(idx not in self.cancelled for idx in idx_list)]
        return not live


class EvaluationEngine:
    """Cached, batched, optionally parallel experiment execution.

    Parameters
    ----------
    hw:
        The :class:`~repro.hardware.board.HardwareCore` providing ground
        truth (``None`` for simulate-only engines; hardware-comparing
        calls then fail).
    workloads:
        Workload objects this engine can run.
    scale:
        Trace scale applied to every recording.
    decoder:
        Decoder library for *simulator* runs (hardware measurement uses
        the board's own path). Reassignable: cache keys include the
        decoder identity, so swapping libraries never reuses stale runs.
    jobs:
        Parallelism knob: 1 = serial, N>1 = N worker processes.
    executor:
        Executor selection: ``None`` derives from ``jobs``; ``"serial"``,
        ``"process"`` or ``"fabric"`` force a kind (``"fabric"``
        dispatches batches to the distributed queue in the SQLite
        ``store`` file, executed by ``repro worker`` processes); a
        pre-built executor object (anything with ``run``/``close``) is
        used as-is.
    overrides:
        Optional shared per-workload kwargs dict (e.g. step-5 fixes);
        mutating it takes effect on the next trial.
    store:
        Optional persistent :class:`~repro.store.resultstore.ResultStore`
        the engine reads/writes through. The in-memory ``_results`` dict
        stays the first-level cache; the store is the durable second
        level shared across engines, processes and sessions. The engine
        never closes a store it was given.
    trace_cache:
        Optional directory of persisted columnar trace blobs (see
        :meth:`~repro.engine.tracestore.TraceStore.columns`). When set,
        simulations attach memory-mapped columnar traces from disk
        instead of re-recording — the fabric worker points every engine
        at one directory next to the store file so each trace is
        recorded once per host, not once per worker.
    """

    def __init__(
        self,
        hw=None,
        workloads=(),
        scale: float = 1.0,
        decoder: Decoder = None,
        jobs: int = 1,
        executor: str = None,
        overrides: dict = None,
        store=None,
        trace_cache: str = None,
    ) -> None:
        self.hw = hw
        self.decoder = decoder if decoder is not None else Decoder()
        self.traces = TraceStore(workloads, scale=scale, cache_dir=trace_cache)
        self.overrides = overrides if overrides is not None else {}
        self.jobs = max(1, int(jobs))
        self.store = store
        if executor is not None and not isinstance(executor, str):
            # A pre-built executor object (duck-typed: run/close) — the
            # way tests and drivers tune fabric poll/timeout knobs.
            self._executor = executor
        else:
            self._executor = make_executor(self.jobs, executor, store=store)
        self._results: dict = {}
        self.telemetry = EngineTelemetry()

    # ------------------------------------------------------------------
    # Keys and traces
    # ------------------------------------------------------------------
    @property
    def scale(self) -> float:
        """Trace scale every recording in this engine uses."""
        return self.traces.scale

    def _wl_overrides(self, name: str) -> dict:
        return self.overrides.get(name, {})

    def result_key(self, config, name: str) -> tuple:
        """Public cache-key view (content-addressed; see :mod:`.keys`)."""
        return sim_key(config, name, self.scale, self._wl_overrides(name), self.decoder)

    def trace(self, name: str):
        """The (memoised) trace of workload ``name`` under current overrides."""
        return self.traces.get(name, self._wl_overrides(name))

    def _sim_trace(self, name: str):
        """Trace-like object simulation groups hand the executor.

        With a trace cache configured this is the mmap-attached columnar
        form — the path that lets a fabric worker simulate without ever
        recording. Without one it is the recorded trace itself; the
        columnar form is then built lazily (and memoised on the trace)
        only when an executor actually fuses a multi-config group.
        """
        if self.traces.cache_dir is not None:
            return self.traces.columns(name, self.decoder, self._wl_overrides(name))
        return self.trace(name)

    # ------------------------------------------------------------------
    # Hardware ground truth
    # ------------------------------------------------------------------
    def measure_hw(self, name: str):
        """Measure ``name`` on the board once; cached thereafter."""
        if self.hw is None:
            raise RuntimeError("this engine has no hardware core attached")
        key = hw_key(self.hw.name, name, self.scale, self._wl_overrides(name))
        cached = self._results.get(key)
        if cached is not None:
            self.telemetry.hw_cache_hits += 1
            return cached
        if self.store is not None:
            stored = self.store.get_hw(key)
            if stored is not None:
                self._results[key] = stored
                self.telemetry.hw_cache_hits += 1
                self.telemetry.store_hits += 1
                return stored
        result = self.hw.measure(self.trace(name))
        self._results[key] = result
        self.telemetry.hw_measurements += 1
        if self.store is not None:
            self.store.put_hw(key, result)
        return result

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(self, config, name: str):
        """Simulate one (config, workload) pair; cached by content."""
        return self.simulate_batch([(config, name)])[0]

    def simulate_batch(self, pairs) -> list:
        """Simulate ``[(config, workload), ...]``; returns aligned stats.

        Cached results are returned directly; duplicate uncached pairs
        within the batch run once; the remainder is dispatched to the
        executor as one parallel block grouped by trace.
        """
        pairs = list(pairs)
        results = [None] * len(pairs)
        pending: dict = {}  # key -> [indices]
        for idx, (config, name) in enumerate(pairs):
            self.telemetry.requested_trials += 1
            key = self.result_key(config, name)
            cached = self._results.get(key)
            if cached is None and key not in pending and self.store is not None:
                cached = self.store.get_sim(key)
                if cached is not None:
                    self._results[key] = cached
                    self.telemetry.store_hits += 1
            if cached is not None:
                self.telemetry.sim_cache_hits += 1
                results[idx] = cached
            elif key in pending:
                self.telemetry.sim_cache_hits += 1
                pending[key].append(idx)
            else:
                pending[key] = [idx]

        if pending:
            # Group the unique jobs by trace so each trace crosses the
            # executor boundary (at most) once per batch.
            groups: dict = {}  # trace_key -> (trace, [(key, config)])
            order = []
            for key, indices in pending.items():
                config, name = pairs[indices[0]]
                tkey = self.traces.key(name, self._wl_overrides(name))
                if tkey not in groups:
                    groups[tkey] = (self._sim_trace(name), [])
                    order.append(tkey)
                groups[tkey][1].append((key, config))

            exec_groups = [
                ([config for _key, config in groups[tkey][1]], tkey, groups[tkey][0])
                for tkey in order
            ]
            # Account the fusion win per group: an executor that fuses
            # (the serial one, hence also every fabric worker) runs each
            # multi-config group as one shared columnar pass.
            if getattr(self._executor, "fuses", False):
                for configs, _tkey, trace in exec_groups:
                    if len(configs) >= 2:
                        self.telemetry.batched_trials += len(configs)
                        self.telemetry.shared_pass_instructions += (
                            len(configs) * trace.instruction_count()
                        )
            group_stats = self._executor.run(
                exec_groups, self.decoder, self.traces.items()
            )
            fresh = []
            for tkey, stats_list in zip(order, group_stats):
                for (key, _config), stats in zip(groups[tkey][1], stats_list):
                    self._results[key] = stats
                    self.telemetry.unique_trials += 1
                    fresh.append((key, stats))
                    for idx in pending[key]:
                        results[idx] = stats
            # An executor that already persisted its results (the fabric
            # workers write the shared store directly) needs no
            # write-back — rewriting N rows per batch would double the
            # write traffic on the contended multi-writer file.
            persisted = getattr(self._executor, "persists", False)
            if self.store is not None and fresh and not persisted:
                self.store.put_sim_many(fresh)
        return results

    # ------------------------------------------------------------------
    # Non-blocking simulation (the async race's engine path)
    # ------------------------------------------------------------------
    def submit_batch(self, pairs) -> "BatchTicket":
        """Start ``[(config, workload), ...]`` without waiting.

        The cache/dedup prologue is exactly :meth:`simulate_batch`'s —
        same telemetry, same store reads — but instead of blocking on
        the executor the remainder is submitted through its
        non-blocking protocol and a :class:`BatchTicket` is returned.
        Executors lacking ``submit`` (pre-built duck-typed ones) fall
        back to running the whole batch at the first poll.
        """
        pairs = list(pairs)
        ticket = BatchTicket(pairs=pairs)
        for idx, (config, name) in enumerate(pairs):
            self.telemetry.requested_trials += 1
            key = self.result_key(config, name)
            ticket.key_of[idx] = key
            cached = self._results.get(key)
            if cached is None and key not in ticket.pending and self.store is not None:
                cached = self.store.get_sim(key)
                if cached is not None:
                    self._results[key] = cached
                    self.telemetry.store_hits += 1
            if cached is not None:
                self.telemetry.sim_cache_hits += 1
                ticket.ready[idx] = cached
            elif key in ticket.pending:
                self.telemetry.sim_cache_hits += 1
                ticket.pending[key].append(idx)
            else:
                ticket.pending[key] = [idx]

        if ticket.pending:
            groups: dict = {}  # trace_key -> (trace, [(key, config)])
            order = []
            for key, indices in ticket.pending.items():
                config, name = pairs[indices[0]]
                tkey = self.traces.key(name, self._wl_overrides(name))
                if tkey not in groups:
                    groups[tkey] = (self._sim_trace(name), [])
                    order.append(tkey)
                groups[tkey][1].append((key, config))

            exec_groups = [
                ([config for _key, config in groups[tkey][1]], tkey, groups[tkey][0])
                for tkey in order
            ]
            if getattr(self._executor, "fuses", False):
                for configs, _tkey, trace in exec_groups:
                    if len(configs) >= 2:
                        self.telemetry.batched_trials += len(configs)
                        self.telemetry.shared_pass_instructions += (
                            len(configs) * trace.instruction_count()
                        )
            for gi, tkey in enumerate(order):
                for ci, (key, _config) in enumerate(groups[tkey][1]):
                    ticket.slot_of[key] = (gi, ci)
                    ticket.key_at[(gi, ci)] = key
            if hasattr(self._executor, "submit"):
                ticket.handle = self._executor.submit(
                    exec_groups, self.decoder, self.traces.items())
            else:
                ticket.exec_groups = exec_groups
        return ticket

    def poll_batch(self, ticket: "BatchTicket") -> dict:
        """``{pair index: stats}`` completed since the previous poll."""
        out = dict(ticket.ready)
        ticket.ready = {}
        if ticket.pending and not ticket.resolved >= set(ticket.pending):
            got: dict = {}
            if ticket.handle is not None:
                got = self._executor.poll(ticket.handle)
            elif ticket.exec_groups is not None:
                # run()-fallback: the whole remainder executes now, once.
                exec_groups, ticket.exec_groups = ticket.exec_groups, None
                live_groups = []
                live_slots = []
                for gi, (configs, tkey, trace) in enumerate(exec_groups):
                    live = [(ci, config) for ci, config in enumerate(configs)
                            if (gi, ci) not in ticket.cancelled_slots]
                    if not live:
                        continue
                    live_groups.append(([c for _ci, c in live], tkey, trace))
                    live_slots.append([(gi, ci) for ci, _c in live])
                if live_groups:
                    stats_lists = self._executor.run(
                        live_groups, self.decoder, self.traces.items())
                    for slots, stats_list in zip(live_slots, stats_lists):
                        for slot, stats in zip(slots, stats_list):
                            got[slot] = stats
            fresh = []
            for slot in sorted(got):
                key = ticket.key_at.get(slot)
                if key is None or key in ticket.resolved:
                    continue
                stats = got[slot]
                ticket.resolved.add(key)
                if key not in self._results:
                    self._results[key] = stats
                    self.telemetry.unique_trials += 1
                    fresh.append((key, stats))
                for idx in ticket.pending[key]:
                    out[idx] = stats
            persisted = getattr(self._executor, "persists", False)
            if self.store is not None and fresh and not persisted:
                self.store.put_sim_many(fresh)
        return out

    def cancel_batch(self, ticket: "BatchTicket", indices) -> None:
        """Withdraw pairs by index (best-effort; see executor ``cancel``).

        Only keys *all* of whose requesting indices are withdrawn are
        cancelled at the executor; a key some live index still wants
        keeps running.
        """
        ticket.cancelled.update(indices)
        slots = []
        for key, idx_list in ticket.pending.items():
            if key in ticket.resolved:
                continue
            if all(idx in ticket.cancelled for idx in idx_list):
                slot = ticket.slot_of.get(key)
                if slot is not None and slot not in ticket.cancelled_slots:
                    ticket.cancelled_slots.add(slot)
                    slots.append(slot)
        if slots:
            if ticket.handle is not None and hasattr(self._executor, "cancel"):
                self._executor.cancel(ticket.handle, slots)
            # run()-fallback tickets honour cancelled_slots at execution.

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def cost_of(self, stats, name: str, cost=None) -> float:
        """Cost of already-computed ``stats`` against hardware."""
        cost_fn = cost if cost is not None else cpi_error
        return cost_fn(stats, self.measure_hw(name))

    def evaluate(self, config, name: str, cost=None) -> float:
        """Cost of one pair (default: absolute relative CPI error)."""
        return self.evaluate_batch([(config, name)], cost=cost)[0]

    def evaluate_batch(self, pairs, cost=None) -> list:
        """Costs for ``[(config, workload), ...]`` against hardware.

        Costs are computed from cached stats, so racing the same runs
        under a different cost function (the step-5 weighted rounds)
        re-simulates nothing.
        """
        pairs = list(pairs)
        cost_fn = cost if cost is not None else cpi_error
        stats_list = self.simulate_batch(pairs)
        return [
            cost_fn(stats, self.measure_hw(name))
            for stats, (_config, name) in zip(stats_list, pairs)
        ]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release executor resources (worker processes)."""
        self._executor.close()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
