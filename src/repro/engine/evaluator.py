"""Evaluator adapters between the tuner's assignment space and the engine.

The racing tuner speaks ``evaluate(assignment, instance) -> cost`` over
flat parameter assignments; the engine speaks ``(SimConfig, workload)``
pairs. Two adapters bridge them:

- :class:`TrialCache` — memoises *any* trial evaluator (engine-backed or
  a plain function) per (assignment, instance) and keeps the unified
  requested/unique trial accounting. This replaces the private memo
  dicts that used to live inside :class:`~repro.tuning.irace.IraceTuner`.
- :class:`AssignmentEvaluator` — applies an assignment to a base config
  and submits the pair to an :class:`~repro.engine.engine.EvaluationEngine`,
  with an optional cost function and cost saturation; its batch method
  lets a whole race block execute as one parallel submission.

Only ``repro.engine.keys`` is imported here (no engine/tuning modules),
which keeps the tuning <-> engine import graph acyclic.
"""

from __future__ import annotations

from repro.engine.keys import freeze_assignment


class TrialCache:
    """Memoising wrapper around ``evaluate(assignment, instance)``.

    Exposes both the scalar call the race's statistics expect and a
    batch call (``evaluate_batch(pairs) -> costs``) that deduplicates
    against the memo and forwards the remainder to the wrapped batch
    evaluator in one block (falling back to a serial loop when the
    underlying evaluator has no batch path).

    Given a persistent ``store`` plus a ``context`` token, the memo also
    reads/writes the store's trial-costs table under
    ``(context, assignment, instance)`` keys — a resumed tuning stage
    (same context) then replays its memo from disk instead of
    recomputing it. The context must uniquely identify everything the
    wrapped evaluator closes over (base config, cost function, stage),
    which is why persistence stays off unless one is supplied.
    """

    def __init__(self, evaluate=None, batch_evaluate=None, store=None, context=None) -> None:
        if evaluate is None and batch_evaluate is None:
            raise ValueError("need evaluate and/or batch_evaluate")
        if batch_evaluate is None:
            batch_evaluate = getattr(evaluate, "evaluate_batch", None)
        self._evaluate = evaluate
        self._batch = batch_evaluate
        self._store = store if context is not None else None
        self._context = context
        self._memo: dict = {}
        #: Trials requested, including memo hits.
        self.requested_trials = 0
        #: Trials that reached the underlying evaluator.
        self.unique_trials = 0
        #: Memo entries replayed from the persistent store.
        self.store_hits = 0

    @staticmethod
    def key(assignment: dict, instance) -> tuple:
        return (freeze_assignment(assignment), instance)

    def __call__(self, assignment: dict, instance) -> float:
        return self.evaluate_batch([(assignment, instance)])[0]

    def _store_key(self, key: tuple) -> tuple:
        return ("cost", self._context, *key)

    def evaluate_batch(self, pairs) -> list:
        pairs = list(pairs)
        costs = [None] * len(pairs)
        pending: dict = {}  # key -> [indices]
        for idx, (assignment, instance) in enumerate(pairs):
            self.requested_trials += 1
            key = self.key(assignment, instance)
            if key not in self._memo and key not in pending and self._store is not None:
                stored = self._store.get_cost(self._store_key(key))
                if stored is not None:
                    self._memo[key] = stored
                    self.store_hits += 1
            if key in self._memo:
                costs[idx] = self._memo[key]
            elif key in pending:
                pending[key].append(idx)
            else:
                pending[key] = [idx]

        if pending:
            todo = [pairs[indices[0]] for indices in pending.values()]
            if self._batch is not None:
                fresh = list(self._batch(todo))
            else:
                fresh = [self._evaluate(a, i) for a, i in todo]
            self.unique_trials += len(todo)
            for key, value in zip(pending, fresh):
                self._memo[key] = value
                for idx in pending[key]:
                    costs[idx] = value
            if self._store is not None:
                self._store.put_cost_many(
                    [(self._store_key(key), value) for key, value in zip(pending, fresh)]
                )
        return costs


class AssignmentEvaluator:
    """Engine-backed ``evaluate(assignment, instance)`` for the tuner.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.engine.engine.EvaluationEngine`.
    base_config:
        Configuration the raced assignments are applied to.
    cost:
        Optional ``cost(SimStats, PerfResult) -> float`` (defaults to the
        engine's CPI error).
    saturation:
        Optional per-trial cost cap (the campaign's outlier guard).
    """

    def __init__(self, engine, base_config, cost=None, saturation: float = None) -> None:
        self.engine = engine
        self.base_config = base_config
        self.cost = cost
        self.saturation = saturation

    def __call__(self, assignment: dict, instance) -> float:
        return self.evaluate_batch([(assignment, instance)])[0]

    def evaluate_batch(self, pairs) -> list:
        pairs = list(pairs)
        configs = [
            (self.base_config.with_updates(assignment), instance)
            for assignment, instance in pairs
        ]
        costs = self.engine.evaluate_batch(configs, cost=self.cost)
        if self.saturation is None:
            return costs
        return [min(c, self.saturation) for c in costs]
