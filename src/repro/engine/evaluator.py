"""Evaluator adapters between the tuner's assignment space and the engine.

The racing tuner speaks ``evaluate(assignment, instance) -> cost`` over
flat parameter assignments; the engine speaks ``(SimConfig, workload)``
pairs. Two adapters bridge them:

- :class:`TrialCache` — memoises *any* trial evaluator (engine-backed or
  a plain function) per (assignment, instance) and keeps the unified
  requested/unique trial accounting. This replaces the private memo
  dicts that used to live inside :class:`~repro.tuning.irace.IraceTuner`.
- :class:`AssignmentEvaluator` — applies an assignment to a base config
  and submits the pair to an :class:`~repro.engine.engine.EvaluationEngine`,
  with an optional cost function and cost saturation; its batch method
  lets a whole race block execute as one parallel submission.

Only ``repro.engine.keys`` is imported here (no engine/tuning modules),
which keeps the tuning <-> engine import graph acyclic.
"""

from __future__ import annotations

from repro.engine.keys import freeze_assignment


class TrialCache:
    """Memoising wrapper around ``evaluate(assignment, instance)``.

    Exposes both the scalar call the race's statistics expect and a
    batch call (``evaluate_batch(pairs) -> costs``) that deduplicates
    against the memo and forwards the remainder to the wrapped batch
    evaluator in one block (falling back to a serial loop when the
    underlying evaluator has no batch path).

    Given a persistent ``store`` plus a ``context`` token, the memo also
    reads/writes the store's trial-costs table under
    ``(context, assignment, instance)`` keys — a resumed tuning stage
    (same context) then replays its memo from disk instead of
    recomputing it. The context must uniquely identify everything the
    wrapped evaluator closes over (base config, cost function, stage),
    which is why persistence stays off unless one is supplied.
    """

    def __init__(self, evaluate=None, batch_evaluate=None, store=None, context=None) -> None:
        if evaluate is None and batch_evaluate is None:
            raise ValueError("need evaluate and/or batch_evaluate")
        if batch_evaluate is None:
            batch_evaluate = getattr(evaluate, "evaluate_batch", None)
        self._evaluate = evaluate
        self._batch = batch_evaluate
        self._store = store if context is not None else None
        self._context = context
        self._memo: dict = {}
        #: Trials requested, including memo hits.
        self.requested_trials = 0
        #: Trials that reached the underlying evaluator.
        self.unique_trials = 0
        #: Memo entries replayed from the persistent store.
        self.store_hits = 0

    @staticmethod
    def key(assignment: dict, instance) -> tuple:
        return (freeze_assignment(assignment), instance)

    def __call__(self, assignment: dict, instance) -> float:
        return self.evaluate_batch([(assignment, instance)])[0]

    def _store_key(self, key: tuple) -> tuple:
        return ("cost", self._context, *key)

    def evaluate_batch(self, pairs) -> list:
        pairs = list(pairs)
        costs = [None] * len(pairs)
        pending: dict = {}  # key -> [indices]
        for idx, (assignment, instance) in enumerate(pairs):
            self.requested_trials += 1
            key = self.key(assignment, instance)
            if key not in self._memo and key not in pending and self._store is not None:
                stored = self._store.get_cost(self._store_key(key))
                if stored is not None:
                    self._memo[key] = stored
                    self.store_hits += 1
            if key in self._memo:
                costs[idx] = self._memo[key]
            elif key in pending:
                pending[key].append(idx)
            else:
                pending[key] = [idx]

        if pending:
            todo = [pairs[indices[0]] for indices in pending.values()]
            if self._batch is not None:
                fresh = list(self._batch(todo))
            else:
                fresh = [self._evaluate(a, i) for a, i in todo]
            self.unique_trials += len(todo)
            for key, value in zip(pending, fresh):
                self._memo[key] = value
                for idx in pending[key]:
                    costs[idx] = value
            if self._store is not None:
                self._store.put_cost_many(
                    [(self._store_key(key), value) for key, value in zip(pending, fresh)]
                )
        return costs

    # ------------------------------------------------------------------
    # Non-blocking batch protocol (the async race path)
    # ------------------------------------------------------------------
    def _async_backend(self):
        """The wrapped evaluator's non-blocking face, if it has one."""
        for fn in (self._batch, self._evaluate):
            if fn is None:
                continue
            owner = getattr(fn, "__self__", None)
            for candidate in (owner, fn):
                if candidate is not None and hasattr(candidate, "submit_batch") \
                        and hasattr(candidate, "poll_batch"):
                    return candidate
        return None

    def submit_batch(self, pairs) -> "_TrialTicket":
        """Start ``[(assignment, instance), ...]`` without waiting.

        Memo and store hits resolve immediately (delivered by the first
        poll); the unique remainder goes to the wrapped evaluator's own
        ``submit_batch`` when it has one, else it is computed in one
        block at the first poll — the synchronous-equivalent fallback.
        """
        pairs = list(pairs)
        ticket = _TrialTicket(pairs)
        for idx, (assignment, instance) in enumerate(pairs):
            self.requested_trials += 1
            key = self.key(assignment, instance)
            if key not in self._memo and key not in ticket.pending \
                    and self._store is not None:
                stored = self._store.get_cost(self._store_key(key))
                if stored is not None:
                    self._memo[key] = stored
                    self.store_hits += 1
            if key in self._memo:
                ticket.ready[idx] = self._memo[key]
            elif key in ticket.pending:
                ticket.pending[key].append(idx)
            else:
                ticket.pending[key] = [idx]

        if ticket.pending:
            ticket.todo_keys = list(ticket.pending)
            ticket.todo_pairs = [pairs[ticket.pending[key][0]]
                                 for key in ticket.todo_keys]
            backend = self._async_backend()
            if backend is not None:
                ticket.backend = backend
                ticket.backend_ticket = backend.submit_batch(ticket.todo_pairs)
        return ticket

    def poll_batch(self, ticket: "_TrialTicket") -> dict:
        """``{pair index: cost}`` completed since the previous poll."""
        out = dict(ticket.ready)
        ticket.ready = {}
        fresh: dict = {}  # todo position -> value
        if ticket.backend is not None:
            fresh = ticket.backend.poll_batch(ticket.backend_ticket)
        elif ticket.todo_keys and not ticket.lazy_done:
            ticket.lazy_done = True
            live = [pos for pos in range(len(ticket.todo_keys))
                    if pos not in ticket.cancelled_pos]
            if live:
                todo = [ticket.todo_pairs[pos] for pos in live]
                if self._batch is not None:
                    values = list(self._batch(todo))
                else:
                    values = [self._evaluate(a, i) for a, i in todo]
                fresh = dict(zip(live, values))

        rows = []
        for pos in sorted(fresh):
            if pos in ticket.delivered_pos:
                continue
            ticket.delivered_pos.add(pos)
            key = ticket.todo_keys[pos]
            value = fresh[pos]
            if key not in self._memo:
                self._memo[key] = value
                self.unique_trials += 1
                rows.append((self._store_key(key), value))
            value = self._memo[key]
            for idx in ticket.pending[key]:
                out[idx] = value
        if self._store is not None and rows:
            self._store.put_cost_many(rows)
        return out

    def cancel_batch(self, ticket: "_TrialTicket", indices) -> None:
        """Withdraw pairs; a unique trial is cancelled only when *every*
        index requesting it is withdrawn."""
        ticket.cancelled.update(indices)
        downstream = []
        for pos, key in enumerate(ticket.todo_keys):
            if pos in ticket.delivered_pos or pos in ticket.cancelled_pos:
                continue
            if all(idx in ticket.cancelled for idx in ticket.pending[key]):
                ticket.cancelled_pos.add(pos)
                downstream.append(pos)
        if downstream and ticket.backend is not None:
            ticket.backend.cancel_batch(ticket.backend_ticket, downstream)


class _TrialTicket:
    """In-flight state of one :meth:`TrialCache.submit_batch`."""

    def __init__(self, pairs):
        self.pairs = pairs
        self.ready: dict = {}          # index -> cost (memo/store hits)
        self.pending: dict = {}        # key -> [indices]
        self.todo_keys: list = []      # unique keys, submission order
        self.todo_pairs: list = []     # one representative pair per key
        self.backend = None
        self.backend_ticket = None
        self.lazy_done = False         # fallback computed yet?
        self.delivered_pos: set = set()
        self.cancelled: set = set()    # withdrawn pair indices
        self.cancelled_pos: set = set()


class AssignmentEvaluator:
    """Engine-backed ``evaluate(assignment, instance)`` for the tuner.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.engine.engine.EvaluationEngine`.
    base_config:
        Configuration the raced assignments are applied to.
    cost:
        Optional ``cost(SimStats, PerfResult) -> float`` (defaults to the
        engine's CPI error).
    saturation:
        Optional per-trial cost cap (the campaign's outlier guard).
    """

    def __init__(self, engine, base_config, cost=None, saturation: float = None) -> None:
        self.engine = engine
        self.base_config = base_config
        self.cost = cost
        self.saturation = saturation

    def __call__(self, assignment: dict, instance) -> float:
        return self.evaluate_batch([(assignment, instance)])[0]

    def evaluate_batch(self, pairs) -> list:
        pairs = list(pairs)
        configs = [
            (self.base_config.with_updates(assignment), instance)
            for assignment, instance in pairs
        ]
        costs = self.engine.evaluate_batch(configs, cost=self.cost)
        if self.saturation is None:
            return costs
        return [min(c, self.saturation) for c in costs]

    # ------------------------------------------------------------------
    # Non-blocking batch protocol (the async race path)
    # ------------------------------------------------------------------
    def submit_batch(self, pairs):
        """Start a block of trials through the engine without waiting."""
        pairs = list(pairs)
        configs = [
            (self.base_config.with_updates(assignment), instance)
            for assignment, instance in pairs
        ]
        return _EvalTicket(
            engine_ticket=self.engine.submit_batch(configs),
            names=[instance for _assignment, instance in pairs],
        )

    def poll_batch(self, ticket) -> dict:
        """``{pair index: cost}`` for trials the engine finished."""
        out = {}
        for idx, stats in self.engine.poll_batch(ticket.engine_ticket).items():
            cost = self.engine.cost_of(stats, ticket.names[idx], cost=self.cost)
            out[idx] = cost if self.saturation is None else min(cost, self.saturation)
        return out

    def cancel_batch(self, ticket, indices) -> None:
        """Withdraw trials by index (best-effort, via the engine)."""
        self.engine.cancel_batch(ticket.engine_ticket, indices)


class _EvalTicket:
    """In-flight state of one :meth:`AssignmentEvaluator.submit_batch`."""

    def __init__(self, engine_ticket, names):
        self.engine_ticket = engine_ticket
        self.names = names
