"""Content-addressed cache keys for the evaluation engine.

Every result the engine stores — a simulator run, a hardware
measurement, a memoised trial cost — is addressed by the *content* of
the experiment that produced it, never by object identity. Two
:class:`~repro.core.config.SimConfig` objects that flatten to the same
parameter dict share one key (and therefore one simulation); any
difference in a parameter, the workload, the trace scale, the
per-workload overrides or the decoder library yields a different key.
"""

from __future__ import annotations

import hashlib

from repro.core.config import SimConfig
from repro.isa.decoder import decoder_library


def freeze_assignment(assignment: dict) -> tuple:
    """A hashable, order-insensitive token for a parameter assignment."""
    return tuple(sorted(assignment.items(), key=lambda kv: kv[0]))


def config_token(config: SimConfig) -> str:
    """Content hash of a configuration via :meth:`SimConfig.flatten`.

    The digest is taken over the sorted flat parameter list, so field
    declaration order and construction style cannot perturb the key.
    """
    flat = freeze_assignment(config.flatten())
    return hashlib.sha256(repr(flat).encode("utf-8")).hexdigest()


def decoder_token(decoder) -> tuple:
    """Identity of a decoder *library*, not a decoder instance.

    Shared with the trace decode cache so both layers key results at the
    same granularity (see :func:`repro.isa.decoder.decoder_library`).
    """
    return decoder_library(decoder)


def overrides_token(overrides: dict) -> tuple:
    """Hashable token for a workload's kwargs overrides."""
    return tuple(sorted((overrides or {}).items()))


def trace_key(workload: str, scale: float, overrides: dict) -> tuple:
    """Key of one recorded trace: (workload, scale, overrides)."""
    return (workload, scale, overrides_token(overrides))


def sim_key(config: SimConfig, workload: str, scale: float, overrides: dict, decoder) -> tuple:
    """Key of one simulator run — the engine's result-cache address.

    Includes the component-registry fingerprint: a changed candidate
    set, knob binding or component registration conservatively
    invalidates every stored simulation produced under the old
    declarations (the registry is part of the simulator's identity).
    """
    # Imported lazily: the registry's space derivation uses the tuning
    # package, whose import chain leads back through the engine.
    from repro.components import registry_fingerprint

    return (
        "sim",
        config_token(config),
        workload,
        scale,
        overrides_token(overrides),
        decoder_token(decoder),
        registry_fingerprint(),
    )


def hw_key(core: str, workload: str, scale: float, overrides: dict) -> tuple:
    """Key of one hardware ground-truth measurement.

    Config-independent, but *core*-dependent: a persistent store is
    shared by engines measuring different board cores, so the measuring
    core is part of the measurement's content.
    """
    return ("hw", core, workload, scale, overrides_token(overrides))
