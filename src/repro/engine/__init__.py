"""Unified evaluation engine: cached, batched, parallel trial execution.

One subsystem owns every (configuration, workload) experiment the
reproduction runs — trace recording, simulator runs, hardware
ground-truth measurement — behind a content-addressed result cache and
a batch API with pluggable serial/process executors. The tuning,
validation and CLI layers all submit their trials here.
"""

from repro.engine.keys import (
    config_token,
    decoder_token,
    freeze_assignment,
    hw_key,
    overrides_token,
    sim_key,
    trace_key,
)
from repro.engine.tracestore import TraceStore
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.evaluator import AssignmentEvaluator, TrialCache
from repro.engine.engine import EngineTelemetry, EvaluationEngine

__all__ = [
    "EvaluationEngine",
    "EngineTelemetry",
    "TraceStore",
    "TrialCache",
    "AssignmentEvaluator",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "config_token",
    "decoder_token",
    "freeze_assignment",
    "overrides_token",
    "trace_key",
    "sim_key",
    "hw_key",
]
