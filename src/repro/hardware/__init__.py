"""The "real hardware" substitute.

The paper validates against a Firefly RK3399 board (Cortex-A53 +
Cortex-A72 silicon). This package provides the synthetic equivalent: the
same timing-model engine run with *hidden ground-truth configurations*
plus hardware-only behaviours the user-facing simulator does not model
(TLB walks, OS zero-page service of untouched pages, front-end
taken-branch bubbles) and seeded measurement noise.

That construction gives the oracle exactly the two error sources the
methodology is designed to attack:

- **specification error** — the ground-truth parameter values are hidden
  from the simulator user and must be recovered by tuning;
- **abstraction error** — the hardware-only behaviours and off-grid
  parameter values cannot be expressed by any simulator configuration,
  leaving the residual error the paper reports (≈7% for the A53 model,
  ≈15% for the A72 model).

Ground-truth values live in :mod:`repro.hardware.groundtruth` and must
never be read by tuning code — only by the board itself (and by
calibration tests that verify the experiment is well-posed).
"""

from repro.hardware.effects import HardwareEffects, HardwareEffectsConfig
from repro.hardware.perf import PerfResult, PERF_EVENTS
from repro.hardware.board import FireflyRK3399, HardwareCore
from repro.hardware.lmbench import LatencyEstimates, apply_latency_estimates, lat_mem_rd

__all__ = [
    "HardwareEffects",
    "HardwareEffectsConfig",
    "PerfResult",
    "PERF_EVENTS",
    "FireflyRK3399",
    "HardwareCore",
    "LatencyEstimates",
    "apply_latency_estimates",
    "lat_mem_rd",
]
