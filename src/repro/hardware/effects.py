"""Hardware-only behaviours (abstraction-error sources).

These hooks attach to the ground-truth simulations the board runs and
model behaviours the user-facing simulator deliberately lacks, mirroring
the abstraction gaps the paper encountered:

- **data/instruction TLBs** — the simulator has no TLB model; the
  hardware pays page-walk latency on TLB misses;
- **OS zero-page service** — loads from pages the program never wrote
  are served as if cached ("a couple memory-intensive micro-benchmarks
  access an uninitialized array, most of which are considered a cache
  miss by our model but are reported as hits on real hardware", §IV-B);
- **taken-branch front-end bubbles** — little cores lose occasional
  fetch slots on taken branches even when correctly predicted.

The magnitudes are per-core-type configuration
(:class:`HardwareEffectsConfig`), chosen in
:mod:`repro.hardware.groundtruth`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareEffectsConfig:
    """Magnitudes of the hardware-only behaviours."""

    page_size: int = 4096
    dtlb_entries: int = 32
    itlb_entries: int = 16
    tlb_walk_latency: int = 25
    #: Serve loads from never-written pages at this latency (zero-page
    #: optimisation); negative disables the behaviour.
    zero_page_latency: int = 2
    #: Add one front-end bubble cycle every N-th taken branch (0 = off).
    taken_branch_bubble_period: int = 0


class _TLB:
    """Fully-associative LRU TLB over page numbers."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._pages: dict = {}
        self.misses = 0
        self.accesses = 0

    def access(self, page: int) -> bool:
        """Returns True on hit; trains LRU state either way."""
        self.accesses += 1
        pages = self._pages
        if page in pages:
            del pages[page]
            pages[page] = True
            return True
        self.misses += 1
        if len(pages) >= self.entries:
            del pages[next(iter(pages))]
        pages[page] = True
        return False

    def reset(self) -> None:
        self._pages = {}
        self.misses = 0
        self.accesses = 0


class HardwareEffects:
    """Per-run hardware-only latency adjustments.

    The memory hierarchy calls ``load_extra`` / ``store_extra`` /
    ``ifetch_extra`` after computing the modelled latency; the cores call
    ``branch_extra`` on correctly predicted taken branches. The
    ``load_override`` hook is consulted by the board's hierarchy wrapper
    *before* the cache access to model zero-page service.
    """

    def __init__(self, config: HardwareEffectsConfig) -> None:
        self.config = config
        self._dtlb = _TLB(config.dtlb_entries)
        self._itlb = _TLB(config.itlb_entries)
        self._written_pages: set = set()
        self._taken_count = 0

    # -- hierarchy hooks ------------------------------------------------
    def load_extra(self, addr: int, now: int) -> int:
        page = addr // self.config.page_size
        if not self._dtlb.access(page):
            return self.config.tlb_walk_latency
        return 0

    def store_extra(self, addr: int, now: int) -> int:
        page = addr // self.config.page_size
        self._written_pages.add(page)
        if not self._dtlb.access(page):
            return self.config.tlb_walk_latency
        return 0

    def ifetch_extra(self, pc: int, now: int) -> int:
        page = pc // self.config.page_size
        if not self._itlb.access(page):
            return self.config.tlb_walk_latency
        return 0

    def load_override(self, addr: int, now: int) -> int:
        """Latency override for zero-page loads, or -1 for no override."""
        zp = self.config.zero_page_latency
        if zp < 0:
            return -1
        if addr // self.config.page_size in self._written_pages:
            return -1
        return zp

    # -- core hooks -----------------------------------------------------
    def branch_extra(self) -> int:
        period = self.config.taken_branch_bubble_period
        if period <= 0:
            return 0
        self._taken_count += 1
        if self._taken_count % period == 0:
            return 1
        return 0

    # --------------------------------------------------------------
    @property
    def dtlb_misses(self) -> int:
        return self._dtlb.misses

    @property
    def itlb_misses(self) -> int:
        return self._itlb.misses

    def reset(self) -> None:
        self._dtlb.reset()
        self._itlb.reset()
        self._written_pages = set()
        self._taken_count = 0
