"""perf-style measurement interface.

"For the tuning process, we use Perf on the board to gather all the
relevant performance statistics" (§V). The board exposes the same
surface: named hardware counters per workload run, with cycle counts
subject to (seeded, deterministic) measurement noise the way repeated
real-board runs are.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Counter names the board can report (perf-event spelling).
PERF_EVENTS = (
    "cycles",
    "instructions",
    "branches",
    "branch-misses",
    "L1-dcache-loads",
    "L1-dcache-load-misses",
    "L1-icache-load-misses",
    "l2-accesses",
    "l2-misses",
)


@dataclass
class PerfResult:
    """One workload's hardware measurement."""

    workload: str
    core: str
    counters: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.counters["cycles"]

    @property
    def instructions(self) -> int:
        return self.counters["instructions"]

    @property
    def cpi(self) -> float:
        """Cycles per instruction — the validation cost metric."""
        instructions = self.counters["instructions"]
        return self.counters["cycles"] / instructions if instructions else 0.0

    @property
    def branch_mpki(self) -> float:
        instructions = self.counters["instructions"]
        if not instructions:
            return 0.0
        return 1000.0 * self.counters["branch-misses"] / instructions

    def counter(self, name: str) -> float:
        if name == "cpi":
            return self.cpi
        if name == "branch-mpki":
            return self.branch_mpki
        try:
            return self.counters[name]
        except KeyError:
            raise KeyError(f"counter {name!r} not measured; have {sorted(self.counters)}") from None
