"""The Firefly RK3399 board substitute.

One board object exposes two measurable cores — the in-order little
cluster ("a53") and the out-of-order big cluster ("a72") — and the
trace-recording facility (the on-board DynamoRIO equivalent).

Measurements are produced by running the ground-truth configuration of
the requested core, with the hardware-only effects attached, and then
perturbing the cycle count with deterministic per-workload measurement
noise. Results are cached per workload name: like the paper's flow, each
micro-benchmark is measured on hardware once and reused for every tuning
trial.
"""

from __future__ import annotations

import math
import random
import zlib

from repro.core.config import SimConfig
from repro.frontend.interpreter import trace_program
from repro.frontend.program import Program
from repro.hardware.effects import HardwareEffects, HardwareEffectsConfig
from repro.hardware.groundtruth import (
    cortex_a53_effects,
    cortex_a53_ground_truth,
    cortex_a72_effects,
    cortex_a72_ground_truth,
)
from repro.hardware.perf import PerfResult
from repro.simulator.simulator import SnipeSim
from repro.trace.record import Trace


class HardwareCore:
    """One measurable core cluster of the board."""

    def __init__(
        self,
        name: str,
        truth: SimConfig,
        effects_config: HardwareEffectsConfig,
        noise_sigma: float = 0.01,
    ) -> None:
        self.name = name
        self.frequency_ghz = truth.frequency_ghz
        self.noise_sigma = noise_sigma
        self._truth = truth
        self._effects_config = effects_config
        self._cache: dict = {}

    # ------------------------------------------------------------------
    def measure(self, trace: Trace) -> PerfResult:
        """Run ``trace`` "on the silicon" and read the perf counters.

        Deterministic: the same workload name always yields the same
        measurement (results are cached, and the noise seed derives from
        the workload name), matching the measure-once workflow.
        """
        cached = self._cache.get(trace.name)
        if cached is not None:
            return cached

        effects = HardwareEffects(self._effects_config)
        sim = SnipeSim(self._truth, effects=effects)
        stats = sim.run(trace)

        noisy_cycles = self._noise_cycles(trace.name, stats.cycles)
        counters = {
            "cycles": noisy_cycles,
            "instructions": stats.instructions,
            "branches": stats.branch.branches,
            "branch-misses": stats.branch.mispredicts,
            "L1-dcache-loads": stats.l1d.accesses,
            "L1-dcache-load-misses": stats.l1d.misses,
            "L1-icache-load-misses": stats.l1i.misses,
            "l2-accesses": stats.l2.accesses,
            "l2-misses": stats.l2.misses,
        }
        result = PerfResult(workload=trace.name, core=self.name, counters=counters)
        self._cache[trace.name] = result
        return result

    def _noise_cycles(self, workload: str, cycles: int) -> int:
        if self.noise_sigma <= 0:
            return cycles
        seed = zlib.crc32(f"{self.name}:{workload}:perf".encode("utf-8"))
        rng = random.Random(seed)
        factor = math.exp(rng.gauss(0.0, self.noise_sigma))
        return max(1, round(cycles * factor))

    def clear_measurement_cache(self) -> None:
        self._cache = {}


class FireflyRK3399:
    """The validation board: one big and one little cluster + tracing."""

    def __init__(self, noise_sigma: float = 0.01) -> None:
        self.a53 = HardwareCore(
            "cortex-a53", cortex_a53_ground_truth(), cortex_a53_effects(), noise_sigma
        )
        self.a72 = HardwareCore(
            "cortex-a72", cortex_a72_ground_truth(), cortex_a72_effects(), noise_sigma
        )

    def core(self, name: str) -> HardwareCore:
        """Look up a cluster by name ("a53"/"cortex-a53"/"a72"/...)."""
        key = name.lower().replace("cortex-", "")
        if key == "a53":
            return self.a53
        if key == "a72":
            return self.a72
        raise ValueError(f"unknown core {name!r}; the board has 'a53' and 'a72'")

    @staticmethod
    def record_trace(program: Program, iterations: int = 1, max_instructions: int = 1_000_000) -> Trace:
        """Record a SIFT trace of ``program`` (the DynamoRIO step).

        Traces are micro-architecture independent, so one recording
        serves both clusters and every simulator configuration.
        """
        return trace_program(program, iterations=iterations, max_instructions=max_instructions)
