"""lmbench-style latency estimation (methodology step #2).

"We estimate the access time of the L1 data and instruction caches in
addition to the L2 cache using the lmbench micro-benchmarks, and plug
them into the timing models" (§III-A). The classic ``lat_mem_rd`` tool
walks a randomly permuted pointer chain over a working set of a chosen
size; because every load depends on the previous one, per-load time is
the load-to-use latency of whatever level the working set fits in.

We reproduce that: a chase kernel per probe size, measured on a board
core *differentially* (two chain lengths, divided difference) so the
one-time array-initialisation pass cancels out of the estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SimConfig
from repro.frontend.builder import ProgramBuilder
from repro.frontend.program import ChaseAddr, PatternTaken, Program, SequentialAddr
from repro.isa.registers import int_reg

_PAGE = 4096
_DATA_BASE = 0x10_0000
_CHASE_UNROLL = 32


@dataclass(frozen=True)
class LatencyEstimates:
    """Measured load-to-use latencies in core cycles."""

    l1_load_to_use: float
    l2_load_to_use: float
    dram_load_to_use: float

    def summary(self) -> str:
        return (
            f"L1 {self.l1_load_to_use:.1f} cy, L2 {self.l2_load_to_use:.1f} cy, "
            f"DRAM {self.dram_load_to_use:.1f} cy (load-to-use)"
        )


def build_chase_program(window: int, loads: int, seed: int = 7, name: str = None) -> Program:
    """Pointer-chase over ``window`` bytes executing ``loads`` loads.

    Structure: an initialisation loop that writes one word per page
    (real lmbench must write the chain pointers; here it also marks the
    pages written, which keeps the OS zero-page behaviour out of the
    measurement), then an unrolled chase loop where every load's address
    register is the previous load's destination.
    """
    if window < _PAGE:
        raise ValueError("window must be at least one page")
    if loads < _CHASE_UNROLL:
        raise ValueError(f"loads must be >= {_CHASE_UNROLL}")
    pages = window // _PAGE
    chase_iters = max(1, loads // _CHASE_UNROLL)
    name = name or f"lat_mem_rd-{window // 1024}KB-{loads}"
    b = ProgramBuilder(name)

    ptr = int_reg(5)
    init_data = int_reg(1)
    # --- init: touch every page once ---------------------------------
    init_pattern = SequentialAddr(_DATA_BASE, _PAGE, window)
    b.label("init")
    b.store(init_data, init_pattern)
    if pages > 1:
        b.branch("init", PatternTaken("T" * (pages - 1) + "N"), cond_reg=init_data)

    # --- chase: serialised dependent loads ----------------------------
    lines = max(1, window // 64)
    chase_pattern = ChaseAddr(_DATA_BASE, lines, seed=seed)
    b.label("chase")
    for _ in range(_CHASE_UNROLL):
        b.load(ptr, chase_pattern, base=ptr)
    if chase_iters > 1:
        b.branch("chase", PatternTaken("T" * (chase_iters - 1) + "N"), cond_reg=init_data)
    return b.build()


def _measure_per_load(core, window: int, loads: int, seed: int = 7, ensure_warm: bool = True) -> float:
    """Differential per-load cycles for a chase over ``window`` bytes.

    Short and long runs share their prefix (same seed, same order), so
    the divided difference isolates the *second* half of the long run.
    With ``ensure_warm`` the chain is at least one full pass over the
    window, making that second half a warm pass — the cache-level
    latency. The memory probe disables it to keep the misses cold.
    """
    if ensure_warm:
        loads = max(loads, window // 64)
    short = build_chase_program(window, loads, seed, name=f"lmbench-{window}-short")
    long = build_chase_program(window, loads * 2, seed, name=f"lmbench-{window}-long")
    trace_short = _trace(short)
    trace_long = _trace(long)
    cycles_short = core.measure(trace_short).cycles
    cycles_long = core.measure(trace_long).cycles
    extra_loads = _count_loads(trace_long) - _count_loads(trace_short)
    if extra_loads <= 0:
        raise RuntimeError("differential measurement produced no extra loads")
    return (cycles_long - cycles_short) / extra_loads


def _trace(program: Program):
    from repro.frontend.interpreter import trace_program

    return trace_program(program, iterations=1, max_instructions=2_000_000)


def _count_loads(trace) -> int:
    from repro.isa.opclasses import OpClass

    shift = 27
    load = int(OpClass.LOAD)
    return sum(1 for rec in trace.records if rec.word >> shift == load)


def lat_mem_rd(
    core,
    l1_size: int = 32 * 1024,
    l2_size: int = 512 * 1024,
    loads: int = 2048,
) -> LatencyEstimates:
    """Estimate L1/L2/DRAM load-to-use latency on a board core.

    The probe sizes derive from the publicly disclosed cache sizes (the
    paper's user knows those from the TRM): half the L1 for the L1
    plateau, a quarter of the L2 for the L2 plateau, and 8x the L2 for
    memory.
    """
    l1_probe = max(_PAGE, l1_size // 2)
    l2_probe = max(2 * _PAGE, l2_size // 4)
    mem_probe = 8 * l2_size
    return LatencyEstimates(
        l1_load_to_use=_measure_per_load(core, l1_probe, loads),
        l2_load_to_use=_measure_per_load(core, l2_probe, loads),
        dram_load_to_use=_measure_per_load(core, mem_probe, loads, ensure_warm=False),
    )


def apply_latency_estimates(config: SimConfig, estimates: LatencyEstimates) -> SimConfig:
    """Plug measured latencies into a config (methodology step #2).

    The load-to-use plateau includes address generation (and, for outer
    levels, the inner levels' tag checks); the inversion below subtracts
    those pipeline components to recover the per-level array latencies
    the simulator parameters describe.
    """
    agu = config.execute.agu_latency
    l1_hit = max(1, round(estimates.l1_load_to_use) - agu)
    l2_hit = max(2, round(estimates.l2_load_to_use) - agu - 1)
    dram = max(20, round(estimates.dram_load_to_use) - agu - 2)
    return config.with_updates(
        {
            "l1d.hit_latency": l1_hit,
            "l1i.hit_latency": max(1, l1_hit - 1),
            "l2.hit_latency": l2_hit,
            "memsys.dram_latency": dram,
            "memsys.dram_page_hit_latency": max(10, int(dram * 0.6)),
        }
    )
