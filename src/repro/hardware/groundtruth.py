"""Hidden ground-truth configurations of the "silicon".

These are the parameter values the validation methodology has to
recover. They play the role of the actual Cortex-A53/A72 RTL: **nothing
outside** :mod:`repro.hardware.board` (and calibration tests that verify
the experiment is well-posed) **may read them**. Tuning code receives
only perf-counter measurements.

Design notes (author-side, mirroring how the paper's experiment is
structured):

- most hidden values lie on the candidate grids the validation campaign
  will race over — that is recoverable *specification* error;
- a few values are deliberately off-grid (e.g. the A72 L1D stride
  prefetcher degree of 3 against candidates {1, 2, 4}; its L2 MSHR count
  of 11 against {8, 12, 16}) and the hardware-only effects
  (:mod:`repro.hardware.effects`) are not modelled at all — that is
  irreducible *abstraction* error, which leaves the A53 model a few
  percent and the A72 model the low teens of residual CPI error, the
  same structure as the paper's 7%/15%;
- the public configs' worst guesses (e.g. divide latencies taken from
  "dated processor information") are what produces the large untuned
  errors of Figure 4, including the dependence-chain outlier (ED1).
"""

from __future__ import annotations

from repro.core.config import (
    BranchConfig,
    CacheConfig,
    ExecConfig,
    MemSysConfig,
    PipelineConfig,
    SimConfig,
)
from repro.hardware.effects import HardwareEffectsConfig


def cortex_a53_ground_truth() -> SimConfig:
    """What the modelled A53 silicon actually implements."""
    return SimConfig(
        core_type="inorder",
        name="cortex-a53-silicon",
        frequency_ghz=1.51,
        pipeline=PipelineConfig(
            fetch_width=2,
            issue_width=2,
            commit_width=2,
            frontend_depth=5,
            dual_issue_rules=True,
            stall_on_use=True,
        ),
        execute=ExecConfig(
            n_ialu=2,
            n_imul=1,
            n_fpu=1,
            n_ls_pipes=1,
            imul_latency=3,
            idiv_latency=4,          # iterative divider with early exit
            idiv_pipelined=False,
            fpalu_latency=4,
            fpmul_latency=4,
            fpdiv_latency=10,
            fpdiv_pipelined=False,
            fcvt_latency=2,
            simd_alu_latency=3,
            simd_mul_latency=4,
            agu_latency=1,
        ),
        branch=BranchConfig(
            predictor="tournament",
            predictor_bits=13,
            btb_entries=512,
            btb_assoc=2,
            ras_entries=8,
            indirect="tagged",
            indirect_entries=256,
            indirect_history_bits=6,
            mispredict_penalty=9,
            btb_miss_penalty=2,
        ),
        l1i=CacheConfig(
            size=32 * 1024,
            assoc=2,
            hit_latency=1,
            mshr_entries=2,
            prefetcher="nextline",
            prefetch_degree=1,
        ),
        l1d=CacheConfig(
            size=32 * 1024,
            assoc=4,
            hit_latency=2,
            serial_tag_data=False,
            ports=1,
            mshr_entries=3,
            hashing="xor",
            replacement="lru",
            victim_entries=4,
            prefetcher="stride",
            prefetch_degree=2,
            prefetch_table_entries=32,
            prefetch_on_hit=True,
        ),
        l2=CacheConfig(
            size=512 * 1024,
            assoc=16,
            hit_latency=15,
            ports=1,
            mshr_entries=7,
            hashing="xor",
            replacement="random",
            prefetcher="ghb",
            prefetch_degree=2,
            prefetch_table_entries=128,
            prefetch_on_hit=False,
        ),
        memsys=MemSysConfig(
            store_buffer_entries=4,
            store_coalescing=True,
            store_forward_latency=1,
            dram_latency=170,
            dram_page_hit_latency=100,
            dram_banks=8,
            dram_bandwidth=2,
            dram_page_policy="open",
        ),
    )


def cortex_a53_effects() -> HardwareEffectsConfig:
    """Hardware-only behaviours of the little cluster."""
    return HardwareEffectsConfig(
        page_size=4096,
        dtlb_entries=32,
        itlb_entries=16,
        tlb_walk_latency=20,
        zero_page_latency=2,
        taken_branch_bubble_period=3,
    )


def cortex_a72_ground_truth() -> SimConfig:
    """What the modelled A72 silicon actually implements."""
    return SimConfig(
        core_type="ooo",
        name="cortex-a72-silicon",
        frequency_ghz=1.99,
        pipeline=PipelineConfig(
            fetch_width=3,
            issue_width=5,
            commit_width=3,
            frontend_depth=11,
            rob_size=96,
            iq_size=36,
            ldq_entries=16,
            stq_entries=12,
            dual_issue_rules=False,
            stall_on_use=True,
        ),
        execute=ExecConfig(
            n_ialu=2,
            n_imul=1,
            n_fpu=2,
            n_ls_pipes=2,
            imul_latency=3,
            idiv_latency=6,          # radix-16 divider with early exit
            idiv_pipelined=False,
            fpalu_latency=3,
            fpmul_latency=4,
            fpdiv_latency=11,
            fpdiv_pipelined=False,
            fcvt_latency=2,
            simd_alu_latency=3,
            simd_mul_latency=4,
            agu_latency=1,
        ),
        branch=BranchConfig(
            predictor="tournament",
            predictor_bits=14,
            btb_entries=1024,
            btb_assoc=4,
            ras_entries=16,
            indirect="tagged",
            indirect_entries=512,
            indirect_history_bits=8,
            mispredict_penalty=15,
            btb_miss_penalty=2,
        ),
        l1i=CacheConfig(
            size=48 * 1024,
            assoc=3,
            hit_latency=1,
            mshr_entries=3,
            prefetcher="nextline",
            prefetch_degree=2,
        ),
        l1d=CacheConfig(
            size=32 * 1024,
            assoc=2,
            hit_latency=3,
            serial_tag_data=False,
            ports=1,
            mshr_entries=8,
            hashing="xor",
            replacement="lru",
            victim_entries=0,
            prefetcher="stride",
            prefetch_degree=3,        # off every candidate grid: abstraction error
            prefetch_table_entries=64,
            prefetch_on_hit=True,
        ),
        l2=CacheConfig(
            size=1024 * 1024,
            assoc=16,
            hit_latency=18,
            ports=1,
            mshr_entries=11,          # off-grid: abstraction error
            hashing="xor",
            replacement="plru",
            prefetcher="ghb",
            prefetch_degree=4,
            prefetch_table_entries=256,
            prefetch_on_hit=False,
        ),
        memsys=MemSysConfig(
            store_buffer_entries=12,
            store_coalescing=True,
            store_forward_latency=1,
            dram_latency=180,
            dram_page_hit_latency=105,
            dram_banks=8,
            dram_bandwidth=4,
            dram_page_policy="open",
        ),
    )


def cortex_a72_effects() -> HardwareEffectsConfig:
    """Hardware-only behaviours of the big cluster."""
    return HardwareEffectsConfig(
        page_size=4096,
        dtlb_entries=48,
        itlb_entries=48,
        tlb_walk_latency=30,
        zero_page_latency=3,
        taken_branch_bubble_period=8,
    )
