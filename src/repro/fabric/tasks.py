"""Task specifications: content-keyed, self-contained, JSON-portable.

A fabric task must carry everything a worker on another host needs to
reproduce the experiment bit-identically — and nothing tied to the
submitting process. For a simulation task that is:

- the configuration as its :meth:`~repro.core.config.SimConfig.flatten`
  dict (``flatten``/``with_updates`` round-trip exactly, and
  ``core_type`` is part of the flat dict, so the worker rebuilds the
  config from the matching public base);
- the workload *name* (workload generators are deterministic, so the
  worker re-records the trace rather than shipping it);
- the trace scale and per-workload overrides;
- the decoder library as an importable ``module:qualname`` spec
  (decoders must be stateless per class, the same contract the process
  executor enforces).

The task **key** is the engine's own
:func:`~repro.engine.keys.sim_key` rendered to text — the same address
the result will live under in the
:class:`~repro.store.resultstore.ResultStore`. That single decision is
what makes the whole fabric exactly-once-per-key: enqueue deduplicates
on it, workers write results under it, drivers read results back by it.

A second kind, ``sleep``, exists for tests and benchmarks: it holds a
lease for a controlled duration without touching the simulator, which
is how crash-recovery tests SIGKILL a worker deterministically
mid-task.
"""

from __future__ import annotations

import importlib

from repro.core.config import (
    SimConfig,
    cortex_a53_public_config,
    cortex_a72_public_config,
)
from repro.engine.keys import sim_key
from repro.isa.decoder import Decoder, decoder_library
from repro.store.serialize import encode_key

#: Simulation task: run one (config, workload) pair, write the stats.
KIND_SIMULATE = "simulate"

#: Test/bench task: hold the lease for ``seconds`` doing nothing.
KIND_SLEEP = "sleep"

TASK_KINDS = (KIND_SIMULATE, KIND_SLEEP)


def decoder_spec(decoder) -> str:
    """Importable ``module:qualname`` identity of a decoder's class."""
    cls = type(decoder)
    return f"{cls.__module__}:{cls.__qualname__}"


def resolve_decoder(spec: str) -> Decoder:
    """Instantiate the decoder class behind a ``module:qualname`` spec."""
    module_name, _, qualname = spec.partition(":")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not (isinstance(obj, type) and issubclass(obj, Decoder)):
        raise TypeError(f"decoder spec {spec!r} does not name a Decoder class")
    return obj()


def check_decoder_portable(decoder) -> None:
    """Fail loudly when a decoder cannot cross a process boundary.

    Workers rebuild the decoder as ``decoder_cls()``; a stateful or
    parameterised decoder would silently diverge from the submitting
    process, so — exactly like the process executor — we prove
    parent-side that reconstruction yields the same library.
    """
    cls = type(decoder)
    try:
        reconstructible = decoder_library(cls()) == decoder_library(decoder)
    except TypeError:
        reconstructible = False
    if not reconstructible:
        raise ValueError(
            f"{cls.__name__} is not reconstructible as {cls.__name__}(); "
            "the fabric needs stateless per-class decoders — use a local "
            "executor instead"
        )


def sim_task(config: SimConfig, workload: str, scale: float,
             overrides: dict, decoder) -> tuple:
    """Build one simulation task; returns ``(key_text, payload)``.

    The key is exactly the store address the result will occupy.
    """
    key = encode_key(sim_key(config, workload, scale, overrides, decoder))
    payload = {
        "workload": workload,
        "scale": scale,
        "overrides": dict(overrides or {}),
        "config": config.flatten(),
        "decoder": decoder_spec(decoder),
    }
    return key, payload


def rebuild_config(flat: dict) -> SimConfig:
    """A task payload's flat config dict back into a :class:`SimConfig`.

    The flat dict includes ``core_type``, which selects the public base
    whose structure matches; ``with_updates`` then restores every
    parameter, so the rebuilt config flattens identically — and
    therefore keys identically — to the submitted one.
    """
    base = (cortex_a53_public_config() if flat.get("core_type") == "inorder"
            else cortex_a72_public_config())
    return base.with_updates(flat)
