"""Durable job queue: lease-based claiming over SQLite.

The queue is the crash-tolerant core of the distributed campaign
fabric. It lives in the *same* SQLite file as the persistent
:class:`~repro.store.resultstore.ResultStore` (its tables are
``fabric_``-prefixed, its schema independently versioned in
``fabric_meta``), so one ``--store PATH`` names both the work and the
results, and a worker needs exactly one file to participate.

The protocol, in full:

- **enqueue** — tasks are keyed by *content* (the engine's
  :func:`~repro.engine.keys.sim_key` rendered to text), inserted with
  ``INSERT OR IGNORE``: two drivers submitting the same experiment
  share one row, the way two engines submitting it share one result.
- **claim** — a worker takes the oldest claimable task inside one
  ``BEGIN IMMEDIATE`` transaction: state ``queued``, or state
  ``leased`` whose lease has expired (expiry-driven requeue — a
  SIGKILLed worker's task becomes claimable again after
  ``lease_seconds`` with no heartbeat). Claiming increments
  ``attempts``; a task claimed more than ``max_attempts`` times goes
  to the ``dead`` state (dead-letter) instead of being leased again.
- **heartbeat** — the executing worker extends its lease periodically;
  a live worker never loses a task to expiry, however slow the task.
- **complete / fail** — completion is *guarded*: it only succeeds while
  the caller still holds the lease. A worker that lost its lease to
  expiry (and whose task was re-run elsewhere) gets ``False`` back and
  moves on — its result write was content-addressed and idempotent, so
  nothing is corrupted. Failure requeues (bounded by ``max_attempts``)
  or dead-letters, recording the error text.

Every statement runs under the store backend's
:func:`~repro.store.backend.retry_busy` wrapper: many workers on one
file is the *designed* load.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from dataclasses import dataclass

from repro.fabric.api import TaskQueue
from repro.store.backend import BUSY_TIMEOUT, connect_sqlite, retry_busy

#: Bump when the fabric tables' layout changes incompatibly.
FABRIC_SCHEMA_VERSION = 1

#: Task lifecycle states.
TASK_STATES = ("queued", "leased", "done", "dead")

#: Default lease duration, seconds. Must exceed the worst-case single
#: task duration *between heartbeats* (workers heartbeat at lease/3).
DEFAULT_LEASE = 30.0

#: Default claim budget per task before it is dead-lettered.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class Task:
    """One claimed unit of work, as handed to a worker."""

    key: str
    kind: str
    payload: dict
    attempts: int
    max_attempts: int


@dataclass(frozen=True)
class Lease:
    """A live (or expired, until reaped) claim on a task."""

    key: str
    worker: str
    expires: float
    attempts: int

    def remaining(self, now: float = None) -> float:
        """Seconds until expiry (negative when already expired)."""
        return self.expires - (time.time() if now is None else now)


class JobQueue(TaskQueue):
    """Durable task queue in one SQLite file (see module docs)."""

    def __init__(
        self,
        path: str,
        lease_seconds: float = DEFAULT_LEASE,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        busy_timeout: float = BUSY_TIMEOUT,
    ) -> None:
        self.path = os.fspath(path)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self._lock = threading.Lock()
        # Wakes same-process long-poll claimers the moment work appears
        # (cross-process enqueuers can't signal us, so `claim(wait=)`
        # still polls on a short bound as well).
        self._wakeup = threading.Condition()
        self._conn = connect_sqlite(self.path, busy_timeout=busy_timeout)
        self._init_schema()

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def _init_schema(self) -> None:
        with self._lock:
            retry_busy(self._create_tables)

    def _create_tables(self) -> None:
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS fabric_meta"
            " (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        row = self._conn.execute(
            "SELECT value FROM fabric_meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT OR IGNORE INTO fabric_meta VALUES ('schema_version', ?)",
                (str(FABRIC_SCHEMA_VERSION),),
            )
            row = (str(FABRIC_SCHEMA_VERSION),)
        self.schema_version = int(row[0])
        if self.schema_version != FABRIC_SCHEMA_VERSION:
            raise RuntimeError(
                f"fabric queue {self.path!r} has schema "
                f"v{self.schema_version}, this code speaks "
                f"v{FABRIC_SCHEMA_VERSION}; drain it with the old code first"
            )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS fabric_tasks ("
            " key TEXT PRIMARY KEY,"          # content key (sim_key text)
            " kind TEXT NOT NULL,"            # task kind (see fabric.tasks)
            " payload TEXT NOT NULL,"         # JSON task spec
            " state TEXT NOT NULL,"           # queued|leased|done|dead
            " attempts INTEGER NOT NULL DEFAULT 0,"
            " max_attempts INTEGER NOT NULL,"
            " worker TEXT,"                   # current/last lease owner
            " lease_expires REAL,"            # epoch seconds
            " error TEXT,"                    # last failure message
            " submitted_by TEXT,"             # free-form client tag
            " created REAL NOT NULL,"
            " updated REAL NOT NULL)"
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS fabric_tasks_state"
            " ON fabric_tasks (state, created)"
        )
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS fabric_workers ("
            " worker_id TEXT PRIMARY KEY,"
            " pid INTEGER,"
            " host TEXT,"
            " started REAL NOT NULL,"
            " last_seen REAL NOT NULL,"
            " tasks_done INTEGER NOT NULL DEFAULT 0,"
            " tasks_failed INTEGER NOT NULL DEFAULT 0,"
            " telemetry TEXT)"
        )

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def enqueue(self, tasks, submitted_by: str = None) -> int:
        """Insert ``[(key, kind, payload_dict), ...]``; returns rows added.

        Content-keyed and idempotent: keys already present (queued,
        running, even done) are left untouched, so resubmitting a batch
        never duplicates work.
        """
        now = time.time()
        rows = [
            (key, kind, json.dumps(payload, sort_keys=True), "queued",
             self.max_attempts, submitted_by, now, now)
            for key, kind, payload in tasks
        ]
        if not rows:
            return 0
        with self._lock:
            added = retry_busy(lambda: self._conn.executemany(
                "INSERT OR IGNORE INTO fabric_tasks"
                " (key, kind, payload, state, max_attempts, submitted_by,"
                "  created, updated)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?)", rows
            ).rowcount)
        if added:
            self._notify()
        return added

    def requeue_dead(self, keys=None) -> int:
        """Give dead-lettered tasks a fresh claim budget; returns count.

        ``keys=None`` revives every dead task; otherwise only the given
        keys (an empty collection is a no-op).
        """
        if keys is not None:
            keys = list(keys)
            if not keys:
                return 0
        now = time.time()
        with self._lock:
            def op():
                if keys is None:
                    cur = self._conn.execute(
                        "UPDATE fabric_tasks SET state='queued', attempts=0,"
                        " worker=NULL, lease_expires=NULL, updated=?"
                        " WHERE state='dead'", (now,)
                    )
                    return cur.rowcount
                marks = ",".join("?" for _ in keys)
                cur = self._conn.execute(
                    f"UPDATE fabric_tasks SET state='queued', attempts=0,"
                    f" worker=NULL, lease_expires=NULL, updated=?"
                    f" WHERE state='dead' AND key IN ({marks})",
                    (now, *keys),
                )
                return cur.rowcount
            revived = retry_busy(op)
        if revived:
            self._notify()
        return revived

    def cancel(self, keys) -> list:
        """Withdraw still-``queued`` tasks; returns the keys removed.

        Only unclaimed rows are deleted: a leased task is already
        executing somewhere (its content-keyed result lands in the
        store regardless), and done/dead rows are history. The async
        race uses this to retract speculative lookahead work for
        eliminated candidates.
        """
        keys = list(keys)
        if not keys:
            return []
        cancelled: list = []
        with self._lock:
            def op(chunk, marks):
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    rows = self._conn.execute(
                        f"SELECT key FROM fabric_tasks"
                        f" WHERE state='queued' AND key IN ({marks})", chunk
                    ).fetchall()
                    hit = [r[0] for r in rows]
                    if hit:
                        hit_marks = ",".join("?" for _ in hit)
                        self._conn.execute(
                            f"DELETE FROM fabric_tasks"
                            f" WHERE state='queued' AND key IN ({hit_marks})",
                            hit,
                        )
                    self._conn.execute("COMMIT")
                    return hit
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise

            for start in range(0, len(keys), 500):
                chunk = keys[start:start + 500]
                marks = ",".join("?" for _ in chunk)
                hit = set(retry_busy(lambda c=chunk, m=marks: op(c, m)))
                cancelled.extend(key for key in chunk if key in hit)
        return cancelled

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker_id: str, lease_seconds: float = None,
              wait: float = None, now: float = None):
        """Lease the oldest claimable task; ``None`` when nothing is.

        Claimable: ``queued``, or ``leased`` with an expired lease (the
        crash-recovery path). A candidate whose claim budget is spent is
        dead-lettered here instead of being handed out again.

        ``wait`` bounds a block on an empty queue: same-process
        enqueues wake the claimer immediately via a condition variable;
        cross-process writers are caught by a short poll bound, so the
        worst-case latency from an external enqueue is ~50 ms instead
        of a caller-visible polling loop.
        """
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        deadline = None if not wait else time.monotonic() + float(wait)
        while True:
            while True:
                with self._lock:
                    row = retry_busy(lambda: self._claim_one(worker_id, lease, now))
                if row is None:
                    break
                if row != "dead-lettered":
                    return row
            if deadline is None:
                return None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            with self._wakeup:
                self._wakeup.wait(min(0.05, remaining))

    def claim_many(self, worker_id: str, n: int,
                   lease_seconds: float = None) -> list:
        """Lease up to ``n`` claimable tasks in one transaction.

        One ``BEGIN IMMEDIATE`` covers the whole batch: the per-claim
        transaction overhead (the dominant SQLite dispatch cost) is
        paid once, and dead-lettering of budget-exhausted candidates
        happens inline exactly as in :meth:`claim`.
        """
        if n <= 0:
            return []
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        with self._lock:
            return retry_busy(lambda: self._claim_batch(worker_id, int(n), lease))

    def _claim_batch(self, worker_id: str, n: int, lease: float) -> list:
        t = time.time()
        tasks: list = []
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            while len(tasks) < n:
                row = self._conn.execute(
                    "SELECT key, kind, payload, attempts, max_attempts"
                    " FROM fabric_tasks"
                    " WHERE state = 'queued'"
                    "    OR (state = 'leased' AND lease_expires <= ?)"
                    " ORDER BY created, key LIMIT 1", (t,)
                ).fetchone()
                if row is None:
                    break
                key, kind, payload, attempts, max_attempts = row
                if attempts >= max_attempts:
                    self._conn.execute(
                        "UPDATE fabric_tasks SET state='dead', worker=NULL,"
                        " lease_expires=NULL, updated=?,"
                        " error=COALESCE(error,"
                        "   'lease expired; claim budget exhausted')"
                        " WHERE key=?", (t, key)
                    )
                    continue
                self._conn.execute(
                    "UPDATE fabric_tasks SET state='leased', worker=?,"
                    " lease_expires=?, attempts=?, updated=? WHERE key=?",
                    (worker_id, t + lease, attempts + 1, t, key),
                )
                tasks.append(Task(key=key, kind=kind,
                                  payload=json.loads(payload),
                                  attempts=attempts + 1,
                                  max_attempts=max_attempts))
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return tasks

    def _claim_one(self, worker_id: str, lease: float, now: float):
        t = time.time() if now is None else now
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            row = self._conn.execute(
                "SELECT key, kind, payload, attempts, max_attempts"
                " FROM fabric_tasks"
                " WHERE state = 'queued'"
                "    OR (state = 'leased' AND lease_expires <= ?)"
                " ORDER BY created, key LIMIT 1", (t,)
            ).fetchone()
            if row is None:
                self._conn.execute("COMMIT")
                return None
            key, kind, payload, attempts, max_attempts = row
            if attempts >= max_attempts:
                # Claim budget exhausted (every prior lease died without
                # completing): dead-letter instead of leasing again.
                self._conn.execute(
                    "UPDATE fabric_tasks SET state='dead', worker=NULL,"
                    " lease_expires=NULL, updated=?,"
                    " error=COALESCE(error, 'lease expired; claim budget exhausted')"
                    " WHERE key=?", (t, key)
                )
                self._conn.execute("COMMIT")
                return "dead-lettered"
            self._conn.execute(
                "UPDATE fabric_tasks SET state='leased', worker=?,"
                " lease_expires=?, attempts=?, updated=? WHERE key=?",
                (worker_id, t + lease, attempts + 1, t, key),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        return Task(key=key, kind=kind, payload=json.loads(payload),
                    attempts=attempts + 1, max_attempts=max_attempts)

    def heartbeat(self, key: str, worker_id: str, lease_seconds: float = None) -> bool:
        """Extend a held lease; ``False`` when the lease was lost."""
        lease = self.lease_seconds if lease_seconds is None else float(lease_seconds)
        now = time.time()
        with self._lock:
            return retry_busy(lambda: self._conn.execute(
                "UPDATE fabric_tasks SET lease_expires=?, updated=?"
                " WHERE key=? AND state='leased' AND worker=?",
                (now + lease, now, key, worker_id),
            ).rowcount) > 0

    def complete(self, key: str, worker_id: str) -> bool:
        """Mark a leased task done; ``False`` when the lease was lost.

        The guard (``worker=?`` on both the leased and the done state)
        is what makes a post-expiry straggler harmless *and* honest:
        its content-addressed result write already happened
        idempotently, and this call reports that the fabric no longer
        considers it the owner — while the actual finisher may repeat
        its own ``complete`` idempotently.
        """
        now = time.time()
        with self._lock:
            return retry_busy(lambda: self._conn.execute(
                "UPDATE fabric_tasks SET state='done',"
                " lease_expires=NULL, error=NULL, updated=?"
                " WHERE key=? AND worker=? AND state IN ('leased', 'done')",
                (now, key, worker_id),
            ).rowcount) > 0

    def complete_many(self, completions) -> list:
        """Mark ``[(key, worker_id), ...]`` done in one transaction.

        Each entry gets the same lease guard as :meth:`complete`;
        the per-entry bools come back in input order.
        """
        completions = list(completions)
        if not completions:
            return []
        now = time.time()
        with self._lock:
            def op():
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    out = []
                    for key, worker in completions:
                        cur = self._conn.execute(
                            "UPDATE fabric_tasks SET state='done',"
                            " lease_expires=NULL, error=NULL, updated=?"
                            " WHERE key=? AND worker=?"
                            " AND state IN ('leased', 'done')",
                            (now, key, worker),
                        )
                        out.append(cur.rowcount > 0)
                    self._conn.execute("COMMIT")
                    return out
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
            return retry_busy(op)

    def release(self, key: str, worker_id: str) -> bool:
        """Return a held lease unstarted; the attempt is refunded.

        The clean exit for a pipelined worker shutting down with a
        prefetched task it never began: the row goes straight back to
        ``queued`` and the claim that prefetched it does not count
        against the task's budget (no spurious retry pressure, no
        dead-letter risk from repeated clean shutdowns).
        """
        now = time.time()
        with self._lock:
            released = retry_busy(lambda: self._conn.execute(
                "UPDATE fabric_tasks SET state='queued', worker=NULL,"
                " lease_expires=NULL, attempts=MAX(attempts - 1, 0), updated=?"
                " WHERE key=? AND worker=? AND state='leased'",
                (now, key, worker_id),
            ).rowcount) > 0
        if released:
            self._notify()
        return released

    def fail(self, key: str, worker_id: str, error: str) -> str:
        """Record a task failure; returns the resulting state.

        Requeues while the claim budget lasts, dead-letters after. A
        failure reported on a lost lease leaves the task untouched
        (returns its current state).
        """
        now = time.time()
        with self._lock:
            def op():
                self._conn.execute("BEGIN IMMEDIATE")
                try:
                    row = self._conn.execute(
                        "SELECT attempts, max_attempts FROM fabric_tasks"
                        " WHERE key=? AND state='leased' AND worker=?",
                        (key, worker_id),
                    ).fetchone()
                    if row is None:
                        self._conn.execute("COMMIT")
                        current = self._conn.execute(
                            "SELECT state FROM fabric_tasks WHERE key=?", (key,)
                        ).fetchone()
                        return current[0] if current else "unknown"
                    attempts, max_attempts = row
                    state = "dead" if attempts >= max_attempts else "queued"
                    self._conn.execute(
                        "UPDATE fabric_tasks SET state=?, worker=NULL,"
                        " lease_expires=NULL, error=?, updated=? WHERE key=?",
                        (state, str(error)[:2000], now, key),
                    )
                    self._conn.execute("COMMIT")
                    return state
                except BaseException:
                    self._conn.execute("ROLLBACK")
                    raise
            state = retry_busy(op)
        if state == "queued":
            self._notify()
        return state

    def _notify(self) -> None:
        """Wake same-process ``claim(wait=)`` blockers: work appeared."""
        with self._wakeup:
            self._wakeup.notify_all()

    # ------------------------------------------------------------------
    # Worker registry (heartbeat rows for `repro status`)
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str = None, pid: int = None,
                        host: str = None) -> str:
        """Insert (or refresh) a worker row; returns the worker id."""
        worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        now = time.time()
        with self._lock:
            retry_busy(lambda: self._conn.execute(
                "INSERT INTO fabric_workers"
                " (worker_id, pid, host, started, last_seen)"
                " VALUES (?, ?, ?, ?, ?)"
                " ON CONFLICT(worker_id) DO UPDATE SET"
                "  pid=excluded.pid, host=excluded.host, last_seen=excluded.last_seen",
                (worker_id, pid, host, now, now),
            ))
        return worker_id

    def worker_beat(self, worker_id: str, tasks_done: int = None,
                    tasks_failed: int = None, telemetry: dict = None) -> None:
        """Refresh a worker row: liveness, counters, engine telemetry."""
        now = time.time()
        sets, params = ["last_seen=?"], [now]
        if tasks_done is not None:
            sets.append("tasks_done=?")
            params.append(int(tasks_done))
        if tasks_failed is not None:
            sets.append("tasks_failed=?")
            params.append(int(tasks_failed))
        if telemetry is not None:
            sets.append("telemetry=?")
            params.append(json.dumps(telemetry, sort_keys=True))
        params.append(worker_id)
        with self._lock:
            retry_busy(lambda: self._conn.execute(
                f"UPDATE fabric_workers SET {', '.join(sets)} WHERE worker_id=?",
                params,
            ))

    def workers(self) -> list:
        """All worker rows as dicts (telemetry JSON decoded)."""
        with self._lock:
            rows = retry_busy(lambda: list(self._conn.execute(
                "SELECT worker_id, pid, host, started, last_seen,"
                " tasks_done, tasks_failed, telemetry"
                " FROM fabric_workers ORDER BY started"
            )))
        out = []
        for (worker_id, pid, host, started, last_seen,
             done, failed, telemetry) in rows:
            out.append({
                "worker_id": worker_id, "pid": pid, "host": host,
                "started": started, "last_seen": last_seen,
                "tasks_done": done, "tasks_failed": failed,
                "telemetry": json.loads(telemetry) if telemetry else None,
            })
        return out

    # ------------------------------------------------------------------
    # Introspection (drivers and `repro status`)
    # ------------------------------------------------------------------
    def states(self, keys) -> dict:
        """``{key: state}`` for the given keys (missing keys absent)."""
        keys = list(keys)
        out: dict = {}
        with self._lock:
            for start in range(0, len(keys), 500):
                chunk = keys[start:start + 500]
                marks = ",".join("?" for _ in chunk)
                rows = retry_busy(lambda c=chunk, m=marks: list(self._conn.execute(
                    f"SELECT key, state FROM fabric_tasks WHERE key IN ({m})", c
                )))
                out.update(rows)
        return out

    def counts(self) -> dict:
        """Row count per task state (all states present, zeros kept)."""
        with self._lock:
            rows = retry_busy(lambda: list(self._conn.execute(
                "SELECT state, COUNT(*) FROM fabric_tasks GROUP BY state"
            )))
        out = {state: 0 for state in TASK_STATES}
        out.update(rows)
        return out

    def depth(self) -> int:
        """Outstanding tasks (queued + leased)."""
        counts = self.counts()
        return counts["queued"] + counts["leased"]

    def retries(self) -> int:
        """Total extra claims beyond each task's first (retry pressure)."""
        with self._lock:
            row = retry_busy(lambda: self._conn.execute(
                "SELECT COALESCE(SUM(MAX(attempts - 1, 0)), 0) FROM fabric_tasks"
            ).fetchone())
        return int(row[0])

    def leases(self, now: float = None) -> list:
        """Live lease rows, soonest expiry first."""
        with self._lock:
            rows = retry_busy(lambda: list(self._conn.execute(
                "SELECT key, worker, lease_expires, attempts FROM fabric_tasks"
                " WHERE state='leased' ORDER BY lease_expires"
            )))
        return [Lease(key=k, worker=w, expires=e, attempts=a)
                for k, w, e, a in rows]

    def dead(self) -> list:
        """Dead-letter rows as ``(key, attempts, error)`` tuples."""
        with self._lock:
            return retry_busy(lambda: list(self._conn.execute(
                "SELECT key, attempts, error FROM fabric_tasks"
                " WHERE state='dead' ORDER BY updated"
            )))

    def errors(self, key: str):
        """Last recorded error text for ``key`` (or ``None``)."""
        with self._lock:
            row = retry_busy(lambda: self._conn.execute(
                "SELECT error FROM fabric_tasks WHERE key=?", (key,)
            ).fetchone())
        return row[0] if row else None

    def purge_done(self) -> int:
        """Drop completed rows (results live in the store); returns count."""
        with self._lock:
            return retry_busy(lambda: self._conn.execute(
                "DELETE FROM fabric_tasks WHERE state='done'"
            ).rowcount)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the queue's SQLite connection."""
        with self._lock:
            self._conn.close()


#: The SQLite implementation under its transport-explicit name, for
#: symmetry with :class:`~repro.service.client.HttpQueue`.
SqliteQueue = JobQueue
