"""Scheduler: decompose driver-level work into content-keyed tasks.

Two shapes of work reach the fabric:

- **engine batches** — the :class:`~repro.engine.engine.EvaluationEngine`
  hands its executor trace-grouped configuration lists (the tuner's
  race blocks, the campaign's whole-suite evaluations, sweep grids).
  :func:`plan_groups` turns them into one task per unique content key.
- **standing grids** — ``repro submit`` expands a sweep-style
  cross-product into tasks without any waiting driver, so workers can
  pre-warm the store for campaigns that arrive later.

Both paths deduplicate before enqueue, twice: within the plan (two
configs flattening identically share a key, hence a task) and against
the :class:`~repro.store.resultstore.ResultStore` (a key whose result
already exists never becomes a task — the store is the fabric's
memory). Stage ordering needs no queue machinery: a campaign's driver
only submits stage *N+1* after stage *N*'s results are read back, so
cross-stage dependencies are enforced by construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.fabric.tasks import KIND_SIMULATE, sim_task


@dataclass
class TaskPlan:
    """What a planning pass decided to do.

    ``tasks`` is ready for :meth:`~repro.fabric.queue.JobQueue.enqueue`;
    ``keys`` preserves the *submission* order of every planned unit
    (including store-satisfied ones, whose entries are marked in
    ``store_hits``) so callers can align results positionally.
    """

    #: ``(key, kind, payload)`` triples to enqueue.
    tasks: list = field(default_factory=list)
    #: Every unique content key, in first-seen submission order.
    keys: list = field(default_factory=list)
    #: Keys whose results the store already held at planning time.
    store_hits: list = field(default_factory=list)
    #: Keys the caller declared already enqueued (speculative dedup):
    #: planned, awaited, but not re-enqueued.
    in_flight: list = field(default_factory=list)

    def summary(self) -> str:
        """One-line account of the plan (used by ``repro submit``)."""
        text = (f"{len(self.keys)} unique trials: {len(self.tasks)} enqueued, "
                f"{len(self.store_hits)} already in store")
        if self.in_flight:
            text += f", {len(self.in_flight)} already in flight"
        return text


def plan_simulations(items, store=None, in_flight=None) -> TaskPlan:
    """Plan tasks for ``[(config, workload, scale, overrides, decoder), ...]``.

    Deduplicates by content key within the list and, when a ``store``
    is given, skips every item whose result is already persisted.
    ``in_flight`` is an optional set of keys a speculative caller has
    already enqueued and not yet collected — those are planned (they
    appear in ``plan.keys`` and ``plan.in_flight``) but produce no new
    task, so overlapping speculative batches enqueue each key once.
    """
    plan = TaskPlan()
    seen = set()
    for config, workload, scale, overrides, decoder in items:
        key, payload = sim_task(config, workload, scale, overrides, decoder)
        if key in seen:
            continue
        seen.add(key)
        plan.keys.append(key)
        if store is not None and store.get_sim(key) is not None:
            plan.store_hits.append(key)
            continue
        if in_flight is not None and key in in_flight:
            plan.in_flight.append(key)
            continue
        plan.tasks.append((key, KIND_SIMULATE, payload))
    return plan


def plan_groups(groups, decoder, scale_overrides=None, store=None,
                in_flight=None) -> TaskPlan:
    """Plan tasks for executor groups ``[(configs, trace_key, trace), ...]``.

    The trace key is the engine's ``(workload, scale, overrides_token)``
    tuple, so each group's identity fully determines its tasks; the
    trace object itself never crosses the fabric (workers re-record).
    """
    items = []
    for configs, tkey, _trace in groups:
        workload, scale, ovr_token = tkey
        overrides = dict(ovr_token)
        for config in configs:
            items.append((config, workload, scale, overrides, decoder))
    return plan_simulations(items, store=store, in_flight=in_flight)


def expand_grid(base_config, grid: dict, workloads, scale: float = 1.0,
                overrides: dict = None, decoder=None) -> list:
    """A sweep grid into :func:`plan_simulations` items.

    ``grid`` maps dotted config paths to value lists; axis order defines
    trial order, exactly as ``repro sweep`` iterates. An empty grid
    yields the base configuration alone. ``overrides`` are per-workload
    kwargs shared by every item; ``decoder`` defaults to the standard
    library.
    """
    if decoder is None:
        from repro.isa.decoder import Decoder

        decoder = Decoder()
    keys = list(grid or {})
    combos = ([dict(zip(keys, values))
               for values in itertools.product(*grid.values())]
              if keys else [{}])
    configs = [base_config.with_updates(combo) for combo in combos]
    return [(config, name, scale, dict(overrides or {}), decoder)
            for config in configs for name in workloads]
