"""The fabric queue interface, extracted.

PR 5 built the durable queue directly on SQLite; the experiment
service (:mod:`repro.service`) adds a second implementation of the
same contract over HTTP. This module is the contract: every consumer
of a queue — :class:`~repro.fabric.worker.FabricWorker`,
:class:`~repro.engine.executors.FabricExecutor`,
:func:`~repro.fabric.status.status_snapshot`, ``repro submit`` —
programs against :class:`TaskQueue`, and anything implementing it
(today :class:`~repro.fabric.queue.JobQueue` on SQLite and
:class:`~repro.service.client.HttpQueue` over the wire) slots in
unchanged. The conformance suite in ``tests/test_fabric_queue.py``
runs against every implementation, so the semantics below are tested
once and inherited everywhere, not re-specified per transport.

Semantics every implementation must honour (the queue module's
docstring is the normative description):

- **enqueue** is content-keyed and idempotent (``INSERT OR IGNORE``);
- **claim** leases the oldest claimable task, dead-lettering tasks
  whose claim budget is exhausted; ``claim_many`` leases up to ``n``
  in one round trip (one transaction / one request), and ``wait``
  turns an empty claim into a bounded block until work appears;
- **heartbeat/complete/fail** are lease-guarded: they succeed only for
  the current lease owner, so post-expiry stragglers are harmless;
  ``complete_many`` acknowledges a batch in one round trip;
- **release** hands an unstarted lease back without burning an
  attempt — the clean exit for a pipelined worker holding a
  prefetched task it will never run;
- **requeue_dead** restores dead-lettered tasks' claim budgets;
- introspection (**states/counts/depth/retries/leases/dead/errors**)
  reflects live queue state for drivers and ``repro status``.
"""

from __future__ import annotations

import abc


class TaskQueue(abc.ABC):
    """Abstract durable task queue (see module docs for semantics)."""

    #: Default lease duration, seconds, applied when a claim/heartbeat
    #: call does not override it.
    lease_seconds: float

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def enqueue(self, tasks, submitted_by: str = None) -> int:
        """Insert ``[(key, kind, payload_dict), ...]``; returns rows added."""

    @abc.abstractmethod
    def requeue_dead(self, keys=None) -> int:
        """Restore dead-lettered tasks' claim budgets; returns count."""

    @abc.abstractmethod
    def cancel(self, keys) -> list:
        """Withdraw still-``queued`` tasks; returns the keys removed.

        Best-effort by design: leased tasks are already executing (the
        worker finishes and the content-keyed result is banked), done
        and dead rows are history. Only unclaimed speculation — the
        async race's stale lookahead — is deleted.
        """

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def claim(self, worker_id: str, lease_seconds: float = None,
              wait: float = None):
        """Lease the oldest claimable task; ``None`` when nothing is.

        ``wait`` (seconds) turns an empty claim into a bounded block:
        the call returns as soon as a task becomes claimable, or
        ``None`` after the wait elapses with the queue still empty.
        """

    def claim_many(self, worker_id: str, n: int,
                   lease_seconds: float = None) -> list:
        """Lease up to ``n`` claimable tasks in one round trip.

        Returns a (possibly empty) list of tasks, oldest first — never
        blocks. Implementations override this with a one-transaction /
        one-request form; the default loops :meth:`claim` so the
        contract holds for any conformant queue.
        """
        tasks = []
        for _ in range(max(0, n)):
            task = self.claim(worker_id, lease_seconds=lease_seconds)
            if task is None:
                break
            tasks.append(task)
        return tasks

    @abc.abstractmethod
    def heartbeat(self, key: str, worker_id: str, lease_seconds: float = None) -> bool:
        """Extend a held lease; ``False`` when the lease was lost."""

    @abc.abstractmethod
    def complete(self, key: str, worker_id: str) -> bool:
        """Mark a leased task done; ``False`` when the lease was lost."""

    def complete_many(self, completions) -> list:
        """Mark ``[(key, worker_id), ...]`` done; one bool per entry.

        Implementations override with a one-transaction / one-request
        form; the default loops :meth:`complete`.
        """
        return [self.complete(key, worker) for key, worker in completions]

    @abc.abstractmethod
    def release(self, key: str, worker_id: str) -> bool:
        """Return a held lease unstarted: back to ``queued``, the
        attempt refunded. ``False`` when the lease was lost (expired
        or reassigned) — harmless either way, the task is claimable.
        """

    @abc.abstractmethod
    def fail(self, key: str, worker_id: str, error: str) -> str:
        """Record a task failure; returns the resulting state."""

    # ------------------------------------------------------------------
    # Worker registry
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def register_worker(self, worker_id: str = None, pid: int = None,
                        host: str = None) -> str:
        """Insert (or refresh) a worker row; returns the worker id."""

    @abc.abstractmethod
    def worker_beat(self, worker_id: str, tasks_done: int = None,
                    tasks_failed: int = None, telemetry: dict = None) -> None:
        """Refresh a worker row: liveness, counters, engine telemetry."""

    @abc.abstractmethod
    def workers(self) -> list:
        """All worker rows as dicts (telemetry JSON decoded)."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def states(self, keys) -> dict:
        """``{key: state}`` for the given keys (missing keys absent)."""

    @abc.abstractmethod
    def counts(self) -> dict:
        """Row count per task state (all states present, zeros kept)."""

    @abc.abstractmethod
    def retries(self) -> int:
        """Total extra claims beyond each task's first (retry pressure)."""

    @abc.abstractmethod
    def leases(self, now: float = None) -> list:
        """Live lease rows, soonest expiry first."""

    @abc.abstractmethod
    def dead(self) -> list:
        """Dead-letter rows as ``(key, attempts, error)`` tuples."""

    @abc.abstractmethod
    def errors(self, key: str):
        """Last recorded error text for ``key`` (or ``None``)."""

    @abc.abstractmethod
    def purge_done(self) -> int:
        """Drop completed rows (results live in the store); returns count."""

    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Outstanding tasks (queued + leased)."""
        counts = self.counts()
        return counts["queued"] + counts["leased"]

    @abc.abstractmethod
    def close(self) -> None:
        """Release the queue's transport (connection, sockets)."""

    def __enter__(self) -> "TaskQueue":
        """Context-manager entry (closes on exit)."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: release the transport."""
        self.close()
