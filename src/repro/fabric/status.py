"""Fabric observability: one snapshot dict behind ``repro status``.

Everything the operator of a distributed campaign needs to see lives in
the shared store file; this module reads it into a single JSON-safe
dict — queue depth per state, retry pressure, dead letters with their
errors, live leases with time-to-expiry, and per-worker rows with
derived throughput plus the engine telemetry each worker last reported
(store hits, unique vs requested trials). The CLI renders it as tables
or, with ``--json``, emits it verbatim for scripts and dashboards.

The store spec may also be an ``http(s)://`` service URL, in which case
the *server* computes the snapshot over its own file (lease expiries
and worker staleness in its clock, so the numbers are skew-free) and
this module merely fetches it. Auth tokens never appear in the
snapshot either way.
"""

from __future__ import annotations

import time

from repro.fabric.queue import JobQueue
from repro.store import open_store

#: A worker whose row went unrefreshed this many lease-thirds is shown
#: as stale (likely dead; its leases will expire on their own).
STALE_AFTER = 3


def status_snapshot(store_path: str, now: float = None,
                    token: str = None) -> dict:
    """Read the full fabric state of ``store_path`` into one dict.

    ``store_path`` may be a local file or a service URL; ``token``
    authenticates the URL case and is ignored otherwise.
    """
    from repro.service.protocol import is_url

    if is_url(store_path):
        from repro.service.client import fetch_status

        return fetch_status(store_path, token=token)
    t = time.time() if now is None else now
    with JobQueue(store_path) as queue, open_store(store_path) as store:
        counts = queue.counts()
        retries = queue.retries()
        leases = [
            {
                "key": lease.key,
                "worker": lease.worker,
                "expires_in_seconds": round(lease.remaining(t), 3),
                "attempts": lease.attempts,
            }
            for lease in queue.leases()
        ]
        dead = [
            {"key": key, "attempts": attempts, "error": error}
            for key, attempts, error in queue.dead()
        ]
        workers = []
        for row in queue.workers():
            age = t - row["last_seen"]
            active = max(1e-9, row["last_seen"] - row["started"])
            telemetry = row["telemetry"] or {}
            workers.append({
                "worker_id": row["worker_id"],
                "pid": row["pid"],
                "host": row["host"],
                "last_seen_seconds_ago": round(age, 3),
                "tasks_done": row["tasks_done"],
                "tasks_failed": row["tasks_failed"],
                "tasks_per_second": row["tasks_done"] / active,
                "store_hits": telemetry.get("store_hits", 0),
                "unique_trials": telemetry.get("unique_trials", 0),
                "requested_trials": telemetry.get("requested_trials", 0),
                "batched_trials": telemetry.get("batched_trials", 0),
                "shared_pass_instructions": telemetry.get("shared_pass_instructions", 0),
                "wire_requests": telemetry.get("wire_requests", 0),
                "wire_bytes_out": telemetry.get("wire_bytes_out", 0),
                "wire_bytes_in": telemetry.get("wire_bytes_in", 0),
                "wire_retries": telemetry.get("wire_retries", 0),
                "wire_compressed_bodies": telemetry.get("wire_compressed_bodies", 0),
            })
        store_stats = store.stats()
    return {
        "store": store_path,
        "queue": counts,
        "depth": counts["queued"] + counts["leased"],
        "retries": retries,
        "leases": leases,
        "dead": dead,
        "workers": workers,
        "results": {
            "sim_results": store_stats["sim_results"],
            "hw_results": store_stats["hw_results"],
            "trial_costs": store_stats["trial_costs"],
        },
    }
