"""The distributed campaign fabric.

A durable, crash-tolerant execution subsystem that moves the *work*
of the paper's embarrassingly parallel methodology — not just the
results — across processes and hosts:

- :mod:`repro.fabric.queue` — schema-versioned job queue in the store's
  SQLite file (WAL, lease-based claiming, heartbeats, expiry-driven
  requeue, bounded retries, dead-letter state);
- :mod:`repro.fabric.tasks` — content-keyed, self-contained task specs
  (the task key *is* the result's store address);
- :mod:`repro.fabric.scheduler` — engine batches and sweep grids
  decomposed into deduplicated task plans;
- :mod:`repro.fabric.worker` — the ``repro worker`` lease/execute loop;
- :mod:`repro.fabric.status` — the ``repro status`` snapshot.

The driver-side entry point is the ``fabric`` executor
(:class:`repro.engine.executors.FabricExecutor`), selected with
``EvaluationEngine(executor="fabric", store=...)`` or ``--executor
fabric`` on the CLI.

Every consumer programs against the queue *interface*
(:class:`repro.fabric.api.TaskQueue`); :class:`JobQueue` (alias
:data:`SqliteQueue`) is the SQLite implementation, and
:class:`repro.service.client.HttpQueue` speaks the same contract to a
remote ``repro serve`` — which is how the fabric crosses host
boundaries without shared storage.
"""

from repro.fabric.api import TaskQueue
from repro.fabric.queue import (
    DEFAULT_LEASE,
    DEFAULT_MAX_ATTEMPTS,
    FABRIC_SCHEMA_VERSION,
    JobQueue,
    Lease,
    SqliteQueue,
    Task,
)
from repro.fabric.scheduler import TaskPlan, expand_grid, plan_groups, plan_simulations
from repro.fabric.status import status_snapshot
from repro.fabric.tasks import (
    KIND_SIMULATE,
    KIND_SLEEP,
    check_decoder_portable,
    rebuild_config,
    resolve_decoder,
    sim_task,
)
from repro.fabric.worker import FabricWorker, WorkerStats

__all__ = [
    "DEFAULT_LEASE",
    "DEFAULT_MAX_ATTEMPTS",
    "FABRIC_SCHEMA_VERSION",
    "JobQueue",
    "Lease",
    "SqliteQueue",
    "Task",
    "TaskQueue",
    "TaskPlan",
    "expand_grid",
    "plan_groups",
    "plan_simulations",
    "status_snapshot",
    "KIND_SIMULATE",
    "KIND_SLEEP",
    "check_decoder_portable",
    "rebuild_config",
    "resolve_decoder",
    "sim_task",
    "FabricWorker",
    "WorkerStats",
]
