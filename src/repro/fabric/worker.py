"""The fabric worker: lease, execute, write back, repeat.

``repro worker --store PATH`` runs one of these; ``repro worker --url
http://host:port --token ...`` runs the *same* loop against a remote
``repro serve`` (the store spec decides the transport — file path →
SQLite queue and store, URL → :class:`~repro.service.client.HttpQueue`
and an HTTP-backed store, no local database file at all). Workers are
fully symmetric and stateless-on-disk: everything a worker knows it
learned from the queue, so adding capacity is starting another process
(on this host or any host that can reach the service) and removing
capacity is killing one — the lease protocol cleans up after both.

Execution goes through a normal :class:`~repro.engine.engine.EvaluationEngine`
pointed at the shared store (one engine per (scale, decoder) pair,
cached for the worker's lifetime so traces record once). That is the
fabric's correctness keystone: a worker runs *exactly the code path a
serial run uses* and writes results under *exactly the key a serial
run would cache them under*, so a distributed campaign is byte-identical
to a serial one by construction rather than by testing.

Lifecycle:

1. register in ``fabric_workers`` (pid/host/heartbeat row);
2. claim loop — lease a task, execute, ``complete``/``fail``; a
   background thread heartbeats the active lease at a third of the
   lease interval and refreshes the worker row with engine telemetry;
3. exit on ``max_tasks`` executed, ``max_idle`` seconds without work,
   ``drain`` finding the queue empty, or :meth:`FabricWorker.stop`.

A SIGKILL at any point needs no cleanup: the heartbeat stops, the lease
expires, the task is claimed elsewhere, and the half-finished worker's
partial writes were content-addressed and idempotent.
"""

from __future__ import annotations

import hashlib
import os
import platform
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.engine import EvaluationEngine
from repro.fabric.queue import DEFAULT_LEASE, JobQueue
from repro.fabric.tasks import KIND_SIMULATE, KIND_SLEEP, rebuild_config, resolve_decoder
from repro.store import open_store


def _all_workloads() -> list:
    """Every named workload a task may reference (micro + SPEC proxies)."""
    from repro.workloads.microbench import MICROBENCHMARKS
    from repro.workloads.spec import SPEC_WORKLOADS

    return [*MICROBENCHMARKS.values(), *SPEC_WORKLOADS.values()]


@dataclass
class WorkerStats:
    """What one worker session did (returned by :meth:`FabricWorker.run`)."""

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    lost_leases: int = 0
    telemetry: dict = field(default_factory=dict)


class FabricWorker:
    """One lease-claiming execution loop over a fabric store file.

    Parameters
    ----------
    store_path:
        The store spec: a shared SQLite file holding both queue and
        result store, or an ``http(s)://`` experiment-service URL (the
        remote-fleet mode; queue and store both speak HTTP, and the
        only local state is the per-host trace cache).
    worker_id:
        Stable identity in ``fabric_workers`` (default: generated).
    lease:
        Lease duration per claim, seconds. The heartbeat thread renews
        at ``lease / 3``, so this bounds crash-detection latency, not
        task duration.
    poll:
        Sleep between empty claim attempts, seconds.
    max_tasks:
        Exit after executing this many tasks (``None`` = unbounded).
    max_idle:
        Exit after this many consecutive seconds without work.
    drain:
        Exit the first time a claim finds the queue empty (run the
        backlog, then stop — the in-process mode tests and benchmarks
        use).
    progress:
        Optional ``callable(str)`` for per-task log lines (tokens are
        redacted before they reach it).
    token:
        Bearer token for URL specs (falls back to ``REPRO_TOKEN``);
        ignored for file paths.
    max_retries:
        Transient-failure budget of the HTTP client for URL specs
        (connection refused, timeouts, 5xx, 429 — retried with
        exponential backoff and jitter); ignored for file paths.
    """

    def __init__(
        self,
        store_path: str,
        worker_id: str = None,
        lease: float = DEFAULT_LEASE,
        poll: float = 0.5,
        max_tasks: int = None,
        max_idle: float = None,
        drain: bool = False,
        progress=None,
        token: str = None,
        max_retries: int = None,
    ) -> None:
        from repro.service.protocol import is_url, resolve_token

        self.store_path = os.fspath(store_path)
        self.lease = float(lease)
        self.poll = float(poll)
        self.max_tasks = max_tasks
        self.max_idle = max_idle
        self.drain = drain
        self.progress = progress
        self.remote = is_url(self.store_path)
        self._token = resolve_token(token) if self.remote else None
        # Each task's retry budget (max_attempts) is a *row* property,
        # fixed by the submitter at enqueue time — workers only honour it.
        if self.remote:
            from repro.service.client import DEFAULT_MAX_RETRIES, HttpQueue

            retries = DEFAULT_MAX_RETRIES if max_retries is None else max_retries
            self.queue = HttpQueue(self.store_path, token=self._token,
                                   lease_seconds=self.lease, max_retries=retries)
            self.store = open_store(self.store_path, token=self._token,
                                    max_retries=retries)
        else:
            self.queue = JobQueue(self.store_path, lease_seconds=self.lease)
            self.store = open_store(self.store_path)
        self.worker_id = self.queue.register_worker(
            worker_id, pid=os.getpid(), host=platform.node() or None
        )
        self.stats = WorkerStats()
        self._engines: dict = {}
        self._active_key: str = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the claim loop to exit after the current task."""
        self._stop.set()

    def _log(self, text: str) -> None:
        if self.progress is not None:
            from repro.service.protocol import redact

            self.progress(f"[{self.worker_id}] {redact(text, self._token)}")

    def _trace_cache_dir(self) -> str:
        """Where this worker's engines keep recorded traces.

        Local store: next to the store file (``<store>.traces/``), so
        every worker on the host shares one cache. Remote store: traces
        stay **local** — shipping multi-megabyte columnar blobs through
        the service would swamp it for data every host can deterministically
        re-record — under a temp-dir keyed by the service URL, so all
        workers on a host talking to the same service still share.
        """
        if not self.remote:
            return self.store_path + ".traces"
        digest = hashlib.sha1(self.store_path.encode("utf-8")).hexdigest()[:12]
        return os.path.join(tempfile.gettempdir(), f"repro-traces-{digest}")

    def _engine_for(self, scale: float, decoder_spec: str) -> EvaluationEngine:
        """The cached engine running (scale, decoder) tasks.

        Engines share one columnar trace cache per host (see
        :meth:`_trace_cache_dir`): the first worker to need a trace
        records and persists it, every other worker — and every later
        engine — memory-maps the blob instead of re-recording.
        """
        key = (scale, decoder_spec)
        engine = self._engines.get(key)
        if engine is None:
            engine = EvaluationEngine(
                workloads=_all_workloads(), scale=scale,
                decoder=resolve_decoder(decoder_spec), store=self.store,
                trace_cache=self._trace_cache_dir(),
            )
            self._engines[key] = engine
        return engine

    def _telemetry(self) -> dict:
        """Engine telemetry summed over every cached engine."""
        total: dict = {}
        for engine in self._engines.values():
            for name, value in asdict(engine.telemetry).items():
                total[name] = total.get(name, 0) + value
        return total

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _execute(self, task) -> None:
        """Run one claimed task (dispatch on kind); raises on failure."""
        if task.kind == KIND_SIMULATE:
            self._execute_simulate(task)
        elif task.kind == KIND_SLEEP:
            time.sleep(float(task.payload.get("seconds", 0.0)))
        else:
            raise ValueError(f"unknown task kind {task.kind!r}")

    def _execute_simulate(self, task) -> None:
        payload = task.payload
        engine = self._engine_for(payload["scale"], payload["decoder"])
        config = rebuild_config(payload["config"])
        workload = payload["workload"]
        engine.overrides[workload] = dict(payload.get("overrides") or {})
        # The engine must address this run exactly where the submitter
        # expects to read it; a mismatch means code-version skew
        # (changed registry fingerprint, changed keying) and running
        # anyway would strand the result under an address nobody polls.
        from repro.store.serialize import encode_key

        local_key = encode_key(engine.result_key(config, workload))
        if local_key != task.key:
            raise RuntimeError(
                "content key mismatch: this worker's code computes a "
                "different sim key than the submitter's (version skew); "
                "restart the worker from the submitting checkout"
            )
        engine.simulate(config, workload)  # writes the store via its key

    # ------------------------------------------------------------------
    # Claim loop
    # ------------------------------------------------------------------
    def run(self) -> WorkerStats:
        """Claim and execute until an exit condition; returns the stats."""
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        beat.start()
        last_work = time.time()
        try:
            while not self._stop.is_set():
                task = self.queue.claim(self.worker_id)
                if task is None:
                    if self.drain:
                        break
                    if (self.max_idle is not None
                            and time.time() - last_work >= self.max_idle):
                        self._log(f"idle {self.max_idle:.0f}s, exiting")
                        break
                    self._stop.wait(self.poll)
                    continue
                last_work = time.time()
                self.stats.claimed += 1
                self._active_key = task.key
                try:
                    self._execute(task)
                except Exception as exc:  # noqa: BLE001 — task isolation
                    self._active_key = None
                    state = self.queue.fail(task.key, self.worker_id,
                                            f"{type(exc).__name__}: {exc}")
                    self.stats.failed += 1
                    self._log(f"task failed ({state}): {exc}")
                else:
                    self._active_key = None
                    if self.queue.complete(task.key, self.worker_id):
                        self.stats.completed += 1
                        self._log(f"done {task.kind} "
                                  f"(attempt {task.attempts}/{task.max_attempts})")
                    else:
                        # Lease expired mid-task and someone else owns it
                        # now; the content-addressed result write was
                        # idempotent, so this is bookkeeping, not loss.
                        self.stats.lost_leases += 1
                        self._log("lease lost before completion")
                self._beat_row()
                if self.max_tasks is not None and self.stats.claimed >= self.max_tasks:
                    break
        finally:
            self._stop.set()
            beat.join(timeout=2.0)
            self.stats.telemetry = self._telemetry()
            self._beat_row()
            self.close()
        return self.stats

    def _beat_row(self) -> None:
        self.queue.worker_beat(
            self.worker_id, tasks_done=self.stats.completed,
            tasks_failed=self.stats.failed, telemetry=self._telemetry(),
        )

    def _heartbeat_loop(self) -> None:
        """Renew the active lease (and the worker row) at lease/3."""
        interval = max(0.05, self.lease / 3.0)
        while not self._stop.wait(interval):
            key = self._active_key
            if key is not None:
                self.queue.heartbeat(key, self.worker_id)
            self.queue.worker_beat(self.worker_id)

    def close(self) -> None:
        """Release engines, the store handle and the queue connection."""
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()
        self.store.close()
        self.queue.close()
