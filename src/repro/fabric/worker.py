"""The fabric worker: lease, execute, write back, repeat.

``repro worker --store PATH`` runs one of these. Workers are fully
symmetric and stateless-on-disk: everything a worker knows it learned
from the queue file, so adding capacity is starting another process
(on this host or any host sharing the store file) and removing
capacity is killing one — the lease protocol cleans up after both.

Execution goes through a normal :class:`~repro.engine.engine.EvaluationEngine`
pointed at the shared store (one engine per (scale, decoder) pair,
cached for the worker's lifetime so traces record once). That is the
fabric's correctness keystone: a worker runs *exactly the code path a
serial run uses* and writes results under *exactly the key a serial
run would cache them under*, so a distributed campaign is byte-identical
to a serial one by construction rather than by testing.

Lifecycle:

1. register in ``fabric_workers`` (pid/host/heartbeat row);
2. claim loop — lease a task, execute, ``complete``/``fail``; a
   background thread heartbeats the active lease at a third of the
   lease interval and refreshes the worker row with engine telemetry;
3. exit on ``max_tasks`` executed, ``max_idle`` seconds without work,
   ``drain`` finding the queue empty, or :meth:`FabricWorker.stop`.

A SIGKILL at any point needs no cleanup: the heartbeat stops, the lease
expires, the task is claimed elsewhere, and the half-finished worker's
partial writes were content-addressed and idempotent.
"""

from __future__ import annotations

import os
import platform
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.engine import EvaluationEngine
from repro.fabric.queue import DEFAULT_LEASE, JobQueue
from repro.fabric.tasks import KIND_SIMULATE, KIND_SLEEP, rebuild_config, resolve_decoder
from repro.store import open_store


def _all_workloads() -> list:
    """Every named workload a task may reference (micro + SPEC proxies)."""
    from repro.workloads.microbench import MICROBENCHMARKS
    from repro.workloads.spec import SPEC_WORKLOADS

    return [*MICROBENCHMARKS.values(), *SPEC_WORKLOADS.values()]


@dataclass
class WorkerStats:
    """What one worker session did (returned by :meth:`FabricWorker.run`)."""

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    lost_leases: int = 0
    telemetry: dict = field(default_factory=dict)


class FabricWorker:
    """One lease-claiming execution loop over a fabric store file.

    Parameters
    ----------
    store_path:
        The shared SQLite file holding both queue and result store.
    worker_id:
        Stable identity in ``fabric_workers`` (default: generated).
    lease:
        Lease duration per claim, seconds. The heartbeat thread renews
        at ``lease / 3``, so this bounds crash-detection latency, not
        task duration.
    poll:
        Sleep between empty claim attempts, seconds.
    max_tasks:
        Exit after executing this many tasks (``None`` = unbounded).
    max_idle:
        Exit after this many consecutive seconds without work.
    drain:
        Exit the first time a claim finds the queue empty (run the
        backlog, then stop — the in-process mode tests and benchmarks
        use).
    progress:
        Optional ``callable(str)`` for per-task log lines.
    """

    def __init__(
        self,
        store_path: str,
        worker_id: str = None,
        lease: float = DEFAULT_LEASE,
        poll: float = 0.5,
        max_tasks: int = None,
        max_idle: float = None,
        drain: bool = False,
        progress=None,
    ) -> None:
        self.store_path = os.fspath(store_path)
        self.lease = float(lease)
        self.poll = float(poll)
        self.max_tasks = max_tasks
        self.max_idle = max_idle
        self.drain = drain
        self.progress = progress
        # Each task's retry budget (max_attempts) is a *row* property,
        # fixed by the submitter at enqueue time — workers only honour it.
        self.queue = JobQueue(self.store_path, lease_seconds=self.lease)
        self.store = open_store(self.store_path)
        self.worker_id = self.queue.register_worker(
            worker_id, pid=os.getpid(), host=platform.node() or None
        )
        self.stats = WorkerStats()
        self._engines: dict = {}
        self._active_key: str = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the claim loop to exit after the current task."""
        self._stop.set()

    def _log(self, text: str) -> None:
        if self.progress is not None:
            self.progress(f"[{self.worker_id}] {text}")

    def _engine_for(self, scale: float, decoder_spec: str) -> EvaluationEngine:
        """The cached engine running (scale, decoder) tasks.

        Engines share one columnar trace cache next to the store file
        (``<store>.traces/``): the first worker on a host to need a
        trace records and persists it, every other worker — and every
        later engine — memory-maps the blob instead of re-recording.
        """
        key = (scale, decoder_spec)
        engine = self._engines.get(key)
        if engine is None:
            engine = EvaluationEngine(
                workloads=_all_workloads(), scale=scale,
                decoder=resolve_decoder(decoder_spec), store=self.store,
                trace_cache=self.store_path + ".traces",
            )
            self._engines[key] = engine
        return engine

    def _telemetry(self) -> dict:
        """Engine telemetry summed over every cached engine."""
        total: dict = {}
        for engine in self._engines.values():
            for name, value in asdict(engine.telemetry).items():
                total[name] = total.get(name, 0) + value
        return total

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _execute(self, task) -> None:
        """Run one claimed task (dispatch on kind); raises on failure."""
        if task.kind == KIND_SIMULATE:
            self._execute_simulate(task)
        elif task.kind == KIND_SLEEP:
            time.sleep(float(task.payload.get("seconds", 0.0)))
        else:
            raise ValueError(f"unknown task kind {task.kind!r}")

    def _execute_simulate(self, task) -> None:
        payload = task.payload
        engine = self._engine_for(payload["scale"], payload["decoder"])
        config = rebuild_config(payload["config"])
        workload = payload["workload"]
        engine.overrides[workload] = dict(payload.get("overrides") or {})
        # The engine must address this run exactly where the submitter
        # expects to read it; a mismatch means code-version skew
        # (changed registry fingerprint, changed keying) and running
        # anyway would strand the result under an address nobody polls.
        from repro.store.serialize import encode_key

        local_key = encode_key(engine.result_key(config, workload))
        if local_key != task.key:
            raise RuntimeError(
                "content key mismatch: this worker's code computes a "
                "different sim key than the submitter's (version skew); "
                "restart the worker from the submitting checkout"
            )
        engine.simulate(config, workload)  # writes the store via its key

    # ------------------------------------------------------------------
    # Claim loop
    # ------------------------------------------------------------------
    def run(self) -> WorkerStats:
        """Claim and execute until an exit condition; returns the stats."""
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        beat.start()
        last_work = time.time()
        try:
            while not self._stop.is_set():
                task = self.queue.claim(self.worker_id)
                if task is None:
                    if self.drain:
                        break
                    if (self.max_idle is not None
                            and time.time() - last_work >= self.max_idle):
                        self._log(f"idle {self.max_idle:.0f}s, exiting")
                        break
                    self._stop.wait(self.poll)
                    continue
                last_work = time.time()
                self.stats.claimed += 1
                self._active_key = task.key
                try:
                    self._execute(task)
                except Exception as exc:  # noqa: BLE001 — task isolation
                    self._active_key = None
                    state = self.queue.fail(task.key, self.worker_id,
                                            f"{type(exc).__name__}: {exc}")
                    self.stats.failed += 1
                    self._log(f"task failed ({state}): {exc}")
                else:
                    self._active_key = None
                    if self.queue.complete(task.key, self.worker_id):
                        self.stats.completed += 1
                        self._log(f"done {task.kind} "
                                  f"(attempt {task.attempts}/{task.max_attempts})")
                    else:
                        # Lease expired mid-task and someone else owns it
                        # now; the content-addressed result write was
                        # idempotent, so this is bookkeeping, not loss.
                        self.stats.lost_leases += 1
                        self._log("lease lost before completion")
                self._beat_row()
                if self.max_tasks is not None and self.stats.claimed >= self.max_tasks:
                    break
        finally:
            self._stop.set()
            beat.join(timeout=2.0)
            self.stats.telemetry = self._telemetry()
            self._beat_row()
            self.close()
        return self.stats

    def _beat_row(self) -> None:
        self.queue.worker_beat(
            self.worker_id, tasks_done=self.stats.completed,
            tasks_failed=self.stats.failed, telemetry=self._telemetry(),
        )

    def _heartbeat_loop(self) -> None:
        """Renew the active lease (and the worker row) at lease/3."""
        interval = max(0.05, self.lease / 3.0)
        while not self._stop.wait(interval):
            key = self._active_key
            if key is not None:
                self.queue.heartbeat(key, self.worker_id)
            self.queue.worker_beat(self.worker_id)

    def close(self) -> None:
        """Release engines, the store handle and the queue connection."""
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()
        self.store.close()
        self.queue.close()
