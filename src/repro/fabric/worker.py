"""The fabric worker: lease, execute, write back, repeat.

``repro worker --store PATH`` runs one of these; ``repro worker --url
http://host:port --token ...`` runs the *same* loop against a remote
``repro serve`` (the store spec decides the transport — file path →
SQLite queue and store, URL → :class:`~repro.service.client.HttpQueue`
and an HTTP-backed store, no local database file at all). Workers are
fully symmetric and stateless-on-disk: everything a worker knows it
learned from the queue, so adding capacity is starting another process
(on this host or any host that can reach the service) and removing
capacity is killing one — the lease protocol cleans up after both.

Execution goes through a normal :class:`~repro.engine.engine.EvaluationEngine`
pointed at the shared store (one engine per (scale, decoder) pair,
cached for the worker's lifetime so traces record once). That is the
fabric's correctness keystone: a worker runs *exactly the code path a
serial run uses* and writes results under *exactly the key a serial
run would cache them under*, so a distributed campaign is byte-identical
to a serial one by construction rather than by testing.

Lifecycle:

1. register in ``fabric_workers`` (pid/host/heartbeat row);
2. claim loop — lease a task, execute, ``complete``/``fail``; a
   background thread heartbeats every held lease at a third of the
   lease interval and refreshes the worker row with engine telemetry;
3. exit on ``max_tasks`` executed, ``max_idle`` seconds without work,
   ``drain`` finding the queue empty, or :meth:`FabricWorker.stop`.

The loop is *pipelined*: while the main thread simulates, a dispatcher
thread prefetch-claims the next task (payload already decoded by the
queue layer) and flushes finished completions through
``complete_many`` — so claim and completion round trips overlap
compute instead of serialising with it. Execution itself stays on the
main thread (subclasses override :meth:`FabricWorker._execute` and the
engine caches are not thread-safe). On a clean exit, a
prefetched-but-unstarted task is handed back via ``release`` with its
claim attempt refunded.

A SIGKILL at any point needs no cleanup: the heartbeat stops, every
held lease (active and prefetched) expires, the tasks are claimed
elsewhere, and the half-finished worker's partial writes were
content-addressed and idempotent.
"""

from __future__ import annotations

import hashlib
import os
import platform
import tempfile
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field

from repro.engine import EvaluationEngine
from repro.fabric.queue import DEFAULT_LEASE, JobQueue
from repro.fabric.tasks import KIND_SIMULATE, KIND_SLEEP, rebuild_config, resolve_decoder
from repro.store import open_store
from repro.store.resultstore import ResultStore


class _WriteBehindStore(ResultStore):
    """The worker engines' store view: sim-result writes are buffered.

    The dispatcher thread flushes the buffer — one ``put_sim_many``
    round trip — immediately *before* the matching completion acks, so
    the ``done implies result readable`` ordering the executors rely on
    is preserved while the write leaves the execute thread's critical
    path. Reads check the buffer first so a not-yet-flushed result is
    never recomputed.
    """

    def __init__(self, inner: ResultStore, worker: "FabricWorker") -> None:
        super().__init__(inner.backend)
        self._worker = worker

    def put_sim_many(self, items) -> int:
        return self._worker._buffer_results(items)

    def get_sim(self, key):
        hit = self._worker._buffered_result(key)
        if hit is not None:
            return hit
        from repro.store.serialize import (
            encode_key, loads, stats_from_payload,
        )

        found, row = self._worker._take_precheck(encode_key(key))
        if found:
            # The dispatcher already asked the store; a ``None`` row is
            # an authoritative recent miss (a racing duplicate landing
            # in between merely costs one idempotent recompute).
            return (stats_from_payload(loads(row))
                    if row is not None else None)
        return super().get_sim(key)


def _all_workloads() -> list:
    """Every named workload a task may reference (micro + SPEC proxies)."""
    from repro.workloads.microbench import MICROBENCHMARKS
    from repro.workloads.spec import SPEC_WORKLOADS

    return [*MICROBENCHMARKS.values(), *SPEC_WORKLOADS.values()]


@dataclass
class WorkerStats:
    """What one worker session did (returned by :meth:`FabricWorker.run`)."""

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    lost_leases: int = 0
    telemetry: dict = field(default_factory=dict)


class FabricWorker:
    """One lease-claiming execution loop over a fabric store file.

    Parameters
    ----------
    store_path:
        The store spec: a shared SQLite file holding both queue and
        result store, or an ``http(s)://`` experiment-service URL (the
        remote-fleet mode; queue and store both speak HTTP, and the
        only local state is the per-host trace cache).
    worker_id:
        Stable identity in ``fabric_workers`` (default: generated).
    lease:
        Lease duration per claim, seconds. The heartbeat thread renews
        at ``lease / 3``, so this bounds crash-detection latency, not
        task duration.
    poll:
        Sleep between empty claim attempts, seconds.
    max_tasks:
        Exit after executing this many tasks (``None`` = unbounded).
    max_idle:
        Exit after this many consecutive seconds without work.
    drain:
        Exit the first time a claim finds the queue empty (run the
        backlog, then stop — the in-process mode tests and benchmarks
        use).
    progress:
        Optional ``callable(str)`` for per-task log lines (tokens are
        redacted before they reach it).
    token:
        Bearer token for URL specs (falls back to ``REPRO_TOKEN``);
        ignored for file paths.
    max_retries:
        Transient-failure budget of the HTTP client for URL specs
        (connection refused, timeouts, 5xx, 429 — retried with
        exponential backoff and jitter); ignored for file paths.
    """

    def __init__(
        self,
        store_path: str,
        worker_id: str = None,
        lease: float = DEFAULT_LEASE,
        poll: float = 0.5,
        max_tasks: int = None,
        max_idle: float = None,
        drain: bool = False,
        progress=None,
        token: str = None,
        max_retries: int = None,
    ) -> None:
        from repro.service.protocol import is_url, resolve_token

        self.store_path = os.fspath(store_path)
        self.lease = float(lease)
        self.poll = float(poll)
        self.max_tasks = max_tasks
        self.max_idle = max_idle
        self.drain = drain
        self.progress = progress
        self.remote = is_url(self.store_path)
        self._token = resolve_token(token) if self.remote else None
        # Each task's retry budget (max_attempts) is a *row* property,
        # fixed by the submitter at enqueue time — workers only honour it.
        if self.remote:
            from repro.service.client import DEFAULT_MAX_RETRIES, HttpQueue

            retries = DEFAULT_MAX_RETRIES if max_retries is None else max_retries
            self.queue = HttpQueue(self.store_path, token=self._token,
                                   lease_seconds=self.lease, max_retries=retries)
            self.store = open_store(self.store_path, token=self._token,
                                    max_retries=retries)
        else:
            self.queue = JobQueue(self.store_path, lease_seconds=self.lease)
            self.store = open_store(self.store_path)
        self.worker_id = self.queue.register_worker(
            worker_id, pid=os.getpid(), host=platform.node() or None
        )
        self.stats = WorkerStats()
        self._engines: dict = {}
        self._active_key: str = None
        self._stop = threading.Event()
        # Pipelining state, all guarded by _io_cv: tasks the dispatcher
        # prefetch-claimed but the main loop has not started, finished
        # tasks awaiting a batched completion ack, and whether the main
        # loop wants the next task prefetched right now.
        self._io_cv = threading.Condition()
        self._pending: deque = deque()
        self._outbox: deque = deque()
        self._results: list = []  # [(key, stats)] awaiting a batched flush
        self._decoded: dict = {}  # task key -> prefetch-decoded SimConfig
        self._precheck: dict = {}  # task key -> prefetched store row (or None)
        self._want_prefetch = False
        self._dispatch_error = None
        self._last_beat = 0.0
        # Engines write through this view; the dispatcher flushes its
        # buffer ahead of each completion batch.
        self._engine_store = _WriteBehindStore(self.store, self)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the claim loop to exit after the current task."""
        self._stop.set()

    def _log(self, text: str) -> None:
        if self.progress is not None:
            from repro.service.protocol import redact

            self.progress(f"[{self.worker_id}] {redact(text, self._token)}")

    def _trace_cache_dir(self) -> str:
        """Where this worker's engines keep recorded traces.

        Local store: next to the store file (``<store>.traces/``), so
        every worker on the host shares one cache. Remote store: traces
        stay **local** — shipping multi-megabyte columnar blobs through
        the service would swamp it for data every host can deterministically
        re-record — under a temp-dir keyed by the service URL, so all
        workers on a host talking to the same service still share.
        """
        if not self.remote:
            return self.store_path + ".traces"
        digest = hashlib.sha1(self.store_path.encode("utf-8")).hexdigest()[:12]
        return os.path.join(tempfile.gettempdir(), f"repro-traces-{digest}")

    def _engine_for(self, scale: float, decoder_spec: str) -> EvaluationEngine:
        """The cached engine running (scale, decoder) tasks.

        Engines share one columnar trace cache per host (see
        :meth:`_trace_cache_dir`): the first worker to need a trace
        records and persists it, every other worker — and every later
        engine — memory-maps the blob instead of re-recording.
        """
        key = (scale, decoder_spec)
        engine = self._engines.get(key)
        if engine is None:
            engine = EvaluationEngine(
                workloads=_all_workloads(), scale=scale,
                decoder=resolve_decoder(decoder_spec), store=self._engine_store,
                trace_cache=self._trace_cache_dir(),
            )
            self._engines[key] = engine
        return engine

    def _telemetry(self) -> dict:
        """Engine telemetry summed over every cached engine.

        Remote workers fold in the wire counters of both HTTP clients
        (queue and store): requests, body bytes each way, retries and
        compressed bodies, ``wire_``-prefixed — what ``repro status``
        shows as the worker's dispatch cost.
        """
        total: dict = {}
        for engine in self._engines.values():
            for name, value in asdict(engine.telemetry).items():
                total[name] = total.get(name, 0) + value
        if self.remote:
            for client in (self.queue.client, self.store.backend.client):
                for name, value in client.telemetry().items():
                    total[name] = total.get(name, 0) + value
        return total

    def _prefetch_many(self, tasks, rows=None) -> None:
        """Decode just-claimed tasks off the critical path.

        Runs on the dispatcher thread between claiming tasks and
        handing them to the main loop: rebuilds each payload's
        :class:`SimConfig` and pre-answers the engine's store checks
        (was this key already computed elsewhere?) with one batched
        ``get_many`` — or with ``rows`` when the claim itself carried
        the precheck (``claim_many_prechecked``) — so the execute
        thread starts simulating without a parse or a round trip.
        Best-effort: any failure here simply leaves the main loop to
        do the work — and raise its own, properly-attributed error.
        """
        tasks = [task for task in tasks if task.kind == KIND_SIMULATE]
        if not tasks:
            return
        try:
            decoded = [(task.key, rebuild_config(task.payload["config"]))
                       for task in tasks]
            if rows is None:
                rows = self.store.backend.get_many(
                    "sim_results", [task.key for task in tasks])
            else:
                rows = {task.key: rows.get(task.key) for task in tasks}
        except Exception:  # noqa: BLE001 — execute path re-raises for real
            return
        with self._io_cv:
            self._decoded.update(decoded)
            self._precheck.update(rows)

    # ------------------------------------------------------------------
    # Write-behind result buffer (see :class:`_WriteBehindStore`)
    # ------------------------------------------------------------------
    def _buffer_results(self, items) -> int:
        items = list(items)
        with self._io_cv:
            self._results.extend(items)
            self._io_cv.notify_all()
        return len(items)

    def _buffered_result(self, key):
        with self._io_cv:
            for buffered_key, stats in self._results:
                if buffered_key == key:
                    return stats
        return None

    def _take_precheck(self, encoded_key: str) -> tuple:
        """``(found, raw_row)`` from the dispatcher's store precheck."""
        sentinel = object()
        with self._io_cv:
            row = self._precheck.pop(encoded_key, sentinel)
        if row is sentinel:
            return False, None
        return True, row

    def _flush_results(self) -> None:
        """Persist every buffered sim result (one store round trip)."""
        with self._io_cv:
            results = list(self._results)
            self._results.clear()
        if results:
            self.store.put_sim_many(results)

    def _flush_completions(self, batch) -> list:
        """Flush buffered results, then ack ``batch`` — fused if possible.

        An :class:`~repro.service.client.HttpQueue` accepts the result
        rows inside the completion request itself
        (``complete_many_with_results``), collapsing the store write
        and the ack into one round trip; the server writes the rows
        before marking anything done, preserving the results-before-ack
        invariant. Local queues fall back to two calls (the store write
        is a local transaction there, not a round trip).
        """
        with self._io_cv:
            if not batch and not self._results:
                return []
        items = [(task.key, self.worker_id) for task in batch]
        fused = getattr(self.queue, "complete_many_with_results", None)
        if fused is None:
            self._flush_results()
            return self.queue.complete_many(items)
        from repro.store.serialize import dumps, encode_key, stats_to_payload

        with self._io_cv:
            results = list(self._results)
            self._results.clear()
        rows = [(encode_key(key), dumps(stats_to_payload(stats)))
                for key, stats in results]
        return fused(items, rows)

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------
    def _execute(self, task) -> None:
        """Run one claimed task (dispatch on kind); raises on failure."""
        if task.kind == KIND_SIMULATE:
            self._execute_simulate(task)
        elif task.kind == KIND_SLEEP:
            time.sleep(float(task.payload.get("seconds", 0.0)))
        else:
            raise ValueError(f"unknown task kind {task.kind!r}")

    def _execute_simulate(self, task) -> None:
        payload = task.payload
        engine = self._engine_for(payload["scale"], payload["decoder"])
        with self._io_cv:
            config = self._decoded.pop(task.key, None)
        if config is None:  # not prefetch-decoded (direct claim path)
            config = rebuild_config(payload["config"])
        workload = payload["workload"]
        engine.overrides[workload] = dict(payload.get("overrides") or {})
        # The engine must address this run exactly where the submitter
        # expects to read it; a mismatch means code-version skew
        # (changed registry fingerprint, changed keying). Skew is a
        # property of the worker's *code*, not of one task, so one
        # check per engine suffices — and a hypothetical later mismatch
        # still fails loudly downstream, as a result the executor
        # reports "marked done but its result is missing".
        if not getattr(engine, "_fabric_skew_checked", False):
            from repro.store.serialize import encode_key

            local_key = encode_key(engine.result_key(config, workload))
            if local_key != task.key:
                raise RuntimeError(
                    "content key mismatch: this worker's code computes a "
                    "different sim key than the submitter's (version skew); "
                    "restart the worker from the submitting checkout"
                )
            engine._fabric_skew_checked = True
        engine.simulate(config, workload)  # writes the store via its key

    # ------------------------------------------------------------------
    # Claim loop
    # ------------------------------------------------------------------
    def run(self) -> WorkerStats:
        """Claim and execute until an exit condition; returns the stats.

        ``stats.claimed`` counts tasks the loop *started executing*; a
        prefetched task handed back on exit (``release``) is neither
        claimed nor charged against the task's retry budget.
        """
        beat = threading.Thread(target=self._heartbeat_loop, daemon=True)
        beat.start()
        dispatcher = threading.Thread(target=self._dispatch_loop, daemon=True)
        dispatcher.start()
        last_work = time.time()
        try:
            while not self._stop.is_set():
                if self._dispatch_error is not None:
                    raise self._dispatch_error
                task = self._next_task()
                if task is None:
                    if self.drain:
                        break
                    if (self.max_idle is not None
                            and time.time() - last_work >= self.max_idle):
                        self._log(f"idle {self.max_idle:.0f}s, exiting")
                        break
                    continue
                last_work = time.time()
                self.stats.claimed += 1
                self._active_key = task.key
                # Overlap the next claim with this task's execution —
                # unless the budget says this is the last one.
                if self.max_tasks is None or (
                        self.stats.claimed + len(self._pending)
                        < self.max_tasks):
                    with self._io_cv:
                        self._want_prefetch = True
                        self._io_cv.notify_all()
                try:
                    self._execute(task)
                except Exception as exc:  # noqa: BLE001 — task isolation
                    self._active_key = None
                    state = self.queue.fail(task.key, self.worker_id,
                                            f"{type(exc).__name__}: {exc}")
                    self.stats.failed += 1
                    self._log(f"task failed ({state}): {exc}")
                else:
                    self._active_key = None
                    with self._io_cv:
                        self._outbox.append(task)
                        self._io_cv.notify_all()
                now = time.time()
                if now - self._last_beat >= max(0.5, self.lease / 6.0):
                    self._last_beat = now
                    self._beat_row()
                if self.max_tasks is not None and self.stats.claimed >= self.max_tasks:
                    break
        finally:
            self._stop.set()
            with self._io_cv:
                self._io_cv.notify_all()
            dispatcher.join(timeout=5.0)
            self._shutdown_queue_state()
            beat.join(timeout=2.0)
            self.stats.telemetry = self._telemetry()
            try:
                self._beat_row()
            except Exception:  # noqa: BLE001 — stats beat is best-effort
                pass
            self.close()
        if self._dispatch_error is not None and not self.stats.claimed:
            raise self._dispatch_error
        return self.stats

    def _next_task(self) -> object:
        """The next task to execute: prefetched if available, else a
        direct claim (long-polling ``poll`` seconds unless draining)."""
        deadline = time.monotonic() + 0.2
        with self._io_cv:
            while (not self._pending and self._want_prefetch
                   and not self._stop.is_set()
                   and self._dispatch_error is None
                   and time.monotonic() < deadline):
                self._io_cv.wait(0.05)
            if self._pending:
                return self._pending.popleft()
            # Take claiming back from the dispatcher; a prefetch that
            # still lands in parallel just parks in _pending for the
            # next iteration.
            self._want_prefetch = False
        if self._stop.is_set():
            return None
        return self.queue.claim(self.worker_id,
                                wait=None if self.drain else self.poll)

    #: Completion acks flush as soon as this many pile up ...
    FLUSH_BATCH = 4
    #: ... or when the oldest unacked completion is this old, seconds
    #: (bounded below so quick bench/poll settings still batch a little).
    FLUSH_AGE = 0.05
    #: Prefetched-task pipeline: top up (batched claim) when the buffer
    #: falls below half, fill to this depth. Sized so one claim round
    #: trip (~2 ms over HTTP) fetches more work than the execute thread
    #: can drain in that time, keeping the worker compute-bound on
    #: sub-ms tasks — yet shallow enough that a SIGKILLed worker
    #: strands only a handful of (expiring) leases.
    PREFETCH_DEPTH = 6

    def _dispatch_loop(self) -> None:
        """Background wire I/O: prefetch claims + batched completions.

        Runs until :meth:`stop` *and* the outbox is flushed. Prefetch
        takes priority — the execute thread may be waiting on it —
        then completion acks flush in batches (size- or age-triggered,
        :data:`FLUSH_BATCH`/:data:`FLUSH_AGE`) so N fast tasks cost one
        result write plus one ``complete_many`` instead of 2N round
        trips. Prefetch misses back off exponentially (0.05 s →
        ``poll``) so an empty queue is not hammered while a long task
        executes.
        """
        miss_pace = 0.05
        oldest = None  # when the current outbox went nonempty
        try:
            while True:
                with self._io_cv:
                    stop = self._stop.is_set()
                    # _want_prefetch is the main loop's standing
                    # permission to claim (it re-grants at every task
                    # start, budget allowing); top the pipeline up
                    # whenever it runs low so the execute thread finds
                    # the next task already claimed and decoded.
                    budget = self.PREFETCH_DEPTH - len(self._pending)
                    if self.max_tasks is not None:
                        budget = min(budget, (
                            self.max_tasks - self.stats.claimed
                            - len(self._pending)))
                    want = (self._want_prefetch and not stop
                            and len(self._pending) <= self.PREFETCH_DEPTH // 2
                            and budget > 0)
                    size = len(self._outbox)
                if size and oldest is None:
                    oldest = time.monotonic()
                if want:
                    fused = getattr(self.queue, "claim_many_prechecked", None)
                    if fused is not None:
                        tasks, rows = fused(self.worker_id, budget)
                    else:
                        tasks = self.queue.claim_many(self.worker_id, budget)
                        rows = None
                    self._prefetch_many(tasks, rows)
                    with self._io_cv:
                        self._pending.extend(tasks)
                        if len(tasks) < budget:
                            # Queue ran dry: drop the permission so the
                            # main thread stops waiting on us and runs
                            # its own long-poll claim instead of
                            # burning its brief deadline.
                            self._want_prefetch = False
                        self._io_cv.notify_all()
                    if tasks:
                        miss_pace = 0.05
                        continue
                if size and (stop or size >= self.FLUSH_BATCH
                             or time.monotonic() - oldest >= self.FLUSH_AGE):
                    with self._io_cv:
                        batch = list(self._outbox)
                        self._outbox.clear()
                    oldest = None
                    # Results first, acks second: a completion must
                    # never become visible before its result row. When
                    # the queue speaks the fused endpoint (HTTP), the
                    # buffered rows ride the completion request and the
                    # server enforces that order in one round trip.
                    oks = self._flush_completions(batch)
                    for task, ok in zip(batch, oks):
                        if ok:
                            self.stats.completed += 1
                            self._log(
                                f"done {task.kind} (attempt "
                                f"{task.attempts}/{task.max_attempts})")
                        else:
                            # Lease expired mid-task and someone else
                            # owns it now; the content-addressed result
                            # write was idempotent, so this is
                            # bookkeeping, not loss.
                            self.stats.lost_leases += 1
                            self._log("lease lost before completion")
                    continue
                with self._io_cv:
                    if self._stop.is_set() and not self._outbox:
                        return
                    if self._outbox and oldest is not None:
                        due = self.FLUSH_AGE - (time.monotonic() - oldest)
                        self._io_cv.wait(max(0.001, min(miss_pace, due)))
                    else:
                        self._io_cv.wait(miss_pace)
                miss_pace = min(miss_pace * 2, max(self.poll, 0.05))
        except BaseException as exc:  # noqa: BLE001 — surfaced to run()
            self._dispatch_error = exc
            self._stop.set()
            with self._io_cv:
                self._io_cv.notify_all()

    def _shutdown_queue_state(self) -> None:
        """Flush completions the dispatcher left and hand back leases.

        Best-effort by design: if the queue is unreachable the leases
        expire on their own and the tasks are re-run elsewhere — the
        content-addressed results make that merely redundant.
        """
        with self._io_cv:
            leftover = list(self._outbox)
            self._outbox.clear()
            pending = list(self._pending)
            self._pending.clear()
        try:
            oks = self._flush_completions(leftover)
            for ok in oks:
                if ok:
                    self.stats.completed += 1
                else:
                    self.stats.lost_leases += 1
        except Exception as exc:  # noqa: BLE001 — lease expiry covers us
            self._log(f"completion flush failed on exit: {exc}")
        for task in pending:
            try:
                self.queue.release(task.key, self.worker_id)
                self._log(f"released unstarted prefetch {task.key}")
            except Exception as exc:  # noqa: BLE001 — lease expiry covers us
                self._log(f"release failed on exit: {exc}")

    def _beat_row(self) -> None:
        self.queue.worker_beat(
            self.worker_id, tasks_done=self.stats.completed,
            tasks_failed=self.stats.failed, telemetry=self._telemetry(),
        )

    def _held_keys(self) -> list:
        """Every lease this worker currently holds (active, prefetched,
        finished-but-unacked) — all renewed by the heartbeat."""
        keys = []
        active = self._active_key
        if active is not None:
            keys.append(active)
        with self._io_cv:
            keys.extend(task.key for task in self._pending)
            keys.extend(task.key for task in self._outbox)
        return keys

    def _heartbeat_loop(self) -> None:
        """Renew every held lease (and the worker row) at lease/3."""
        interval = max(0.05, self.lease / 3.0)
        while not self._stop.wait(interval):
            for key in self._held_keys():
                self.queue.heartbeat(key, self.worker_id)
            self.queue.worker_beat(self.worker_id)

    def close(self) -> None:
        """Release engines, the store handle and the queue connection."""
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()
        self.store.close()
        self.queue.close()
