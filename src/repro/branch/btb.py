"""Branch target buffer.

A taken branch whose target is absent from the BTB redirects the front
end even when the direction prediction was correct — the fetch unit only
learns the target at decode/execute. The core models charge a (smaller)
bubble for such BTB misses.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Set-associative target cache with true-LRU replacement."""

    def __init__(self, entries: int = 256, assoc: int = 2) -> None:
        if entries <= 0 or assoc <= 0:
            raise ValueError("entries and assoc must be positive")
        if entries % assoc:
            raise ValueError(f"entries ({entries}) must be divisible by assoc ({assoc})")
        self.entries = entries
        self.assoc = assoc
        self.sets = entries // assoc
        #: Per-set ordered dict of tag -> target; insertion order is LRU
        #: order (oldest first).
        self._sets = [dict() for _ in range(self.sets)]

    def _locate(self, pc: int) -> tuple:
        index = (pc >> 2) % self.sets
        tag = pc >> 2
        return self._sets[index], tag

    def lookup(self, pc: int) -> int:
        """Return the cached target for ``pc``, or -1 on BTB miss."""
        entries, tag = self._locate(pc)
        target = entries.get(tag, -1)
        if target != -1:
            # Refresh LRU position.
            del entries[tag]
            entries[tag] = target
        return target

    def insert(self, pc: int, target: int) -> None:
        """Record ``target`` for the taken branch at ``pc``."""
        entries, tag = self._locate(pc)
        if tag in entries:
            del entries[tag]
        elif len(entries) >= self.assoc:
            oldest = next(iter(entries))
            del entries[oldest]
        entries[tag] = target

    def reset(self) -> None:
        self._sets = [dict() for _ in range(self.sets)]
