"""Branch target buffer.

A taken branch whose target is absent from the BTB redirects the front
end even when the direction prediction was correct — the fetch unit only
learns the target at decode/execute. The core models charge a (smaller)
bubble for such BTB misses.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Set-associative target cache with true-LRU replacement."""

    __slots__ = ("entries", "assoc", "sets", "_sets")

    def __init__(self, entries: int = 256, assoc: int = 2) -> None:
        if entries <= 0 or assoc <= 0:
            raise ValueError("entries and assoc must be positive")
        if entries % assoc:
            raise ValueError(f"entries ({entries}) must be divisible by assoc ({assoc})")
        self.entries = entries
        self.assoc = assoc
        self.sets = entries // assoc
        #: Per-set ordered dict of tag -> target; insertion order is LRU
        #: order (oldest first). Sets materialise lazily on first insert.
        self._sets = [None] * self.sets

    def lookup(self, pc: int) -> int:
        """Return the cached target for ``pc``, or -1 on BTB miss."""
        tag = pc >> 2
        entries = self._sets[tag % self.sets]
        if entries is None:
            return -1
        target = entries.get(tag, -1)
        if target != -1:
            # Refresh LRU position.
            del entries[tag]
            entries[tag] = target
        return target

    def insert(self, pc: int, target: int) -> None:
        """Record ``target`` for the taken branch at ``pc``."""
        tag = pc >> 2
        idx = tag % self.sets
        entries = self._sets[idx]
        if entries is None:
            entries = self._sets[idx] = {}
        if tag in entries:
            del entries[tag]
        elif len(entries) >= self.assoc:
            oldest = next(iter(entries))
            del entries[oldest]
        entries[tag] = target

    def lookup_insert(self, pc: int, target: int) -> int:
        """Fused :meth:`lookup` + :meth:`insert` for one taken branch.

        Returns the previously cached target (-1 on BTB miss) and
        records ``target``, touching the set once. State-identical to
        the two separate calls.
        """
        tag = pc >> 2
        idx = tag % self.sets
        entries = self._sets[idx]
        if entries is None:
            self._sets[idx] = {tag: target}
            return -1
        old = entries.pop(tag, -1)
        if old == -1 and len(entries) >= self.assoc:
            del entries[next(iter(entries))]
        entries[tag] = target
        return old

    def reset(self) -> None:
        self._sets = [None] * self.sets
