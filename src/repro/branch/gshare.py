"""Gshare (global-history XOR PC) direction predictor."""

from __future__ import annotations

from repro.branch.base import DirectionPredictor


class GSharePredictor(DirectionPredictor):
    """Two-bit counter table indexed by ``(pc >> 2) XOR global_history``.

    ``history_bits`` both sizes the table (``2**history_bits`` entries)
    and bounds the history register, the usual gshare organisation.
    """

    kind = "gshare"

    __slots__ = ("history_bits", "_mask", "_table", "_history")

    def __init__(self, history_bits: int = 12) -> None:
        if not 2 <= history_bits <= 24:
            raise ValueError(f"history_bits out of range [2, 24]: {history_bits}")
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._table = [2] * (1 << history_bits)
        self._history = 0

    def predict(self, pc: int) -> bool:
        idx = ((pc >> 2) ^ self._history) & self._mask
        return self._table[idx] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = ((pc >> 2) ^ self._history) & self._mask
        counter = self._table[idx]
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._mask

    def predict_update(self, pc: int, taken: bool) -> bool:
        mask = self._mask
        history = self._history
        idx = ((pc >> 2) ^ history) & mask
        table = self._table
        counter = table[idx]
        if taken:
            if counter < 3:
                table[idx] = counter + 1
        elif counter > 0:
            table[idx] = counter - 1
        self._history = ((history << 1) | (1 if taken else 0)) & mask
        return counter >= 2

    def reset(self) -> None:
        self._table = [2] * (1 << self.history_bits)
        self._history = 0
