"""Branch prediction subsystem.

The branch predictor is the paper's canonical example of a *specialised*
component whose organisation is never disclosed by vendors and therefore
an "ideal candidate for automated tuning" (§IV-A). We provide a zoo of
direction predictors (static, bimodal, gshare, tournament), a branch
target buffer, a return-address stack and two indirect-target predictors
(last-target and tagged-history), all assembled by
:class:`~repro.branch.unit.BranchUnit` from configuration values — so the
racing tuner can select both the predictor *kind* and its geometry.
"""

from repro.branch.base import DirectionPredictor
from repro.branch.simple import StaticTakenPredictor, StaticNotTakenPredictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.tage import TAGEPredictor
from repro.branch.tournament import TournamentPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.indirect import (
    IndirectPredictor,
    LastTargetPredictor,
    NoIndirectPredictor,
    TaggedIndirectPredictor,
)
from repro.branch.unit import BranchStats, BranchUnit, build_direction_predictor, build_indirect_predictor

__all__ = [
    "DirectionPredictor",
    "StaticTakenPredictor",
    "StaticNotTakenPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "TAGEPredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "IndirectPredictor",
    "NoIndirectPredictor",
    "LastTargetPredictor",
    "TaggedIndirectPredictor",
    "BranchUnit",
    "BranchStats",
    "build_direction_predictor",
    "build_indirect_predictor",
]
