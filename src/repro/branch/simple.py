"""Static direction predictors (the weakest baseline configurations)."""

from __future__ import annotations

from repro.branch.base import DirectionPredictor


class StaticTakenPredictor(DirectionPredictor):
    """Always predicts taken."""

    kind = "static-taken"

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    def reset(self) -> None:
        pass


class StaticNotTakenPredictor(DirectionPredictor):
    """Always predicts not-taken."""

    kind = "static-nottaken"

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass

    def reset(self) -> None:
        pass
