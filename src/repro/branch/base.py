"""Direction-predictor interface."""

from __future__ import annotations


class DirectionPredictor:
    """Predicts taken/not-taken for conditional branches.

    Implementations must be deterministic given the access sequence, so
    that identical configurations produce identical simulated cycles.
    """

    #: Registry key used by configuration / the tuner.
    kind = "abstract"

    __slots__ = ()

    def predict(self, pc: int) -> bool:
        """Return the predicted direction for the branch at ``pc``."""
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        """Train the predictor with the resolved outcome."""
        raise NotImplementedError

    def predict_update(self, pc: int, taken: bool) -> bool:
        """Predict then train; returns the *prediction* (hot-loop helper)."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        return prediction

    def reset(self) -> None:
        """Forget all training state."""
        raise NotImplementedError


def saturating_update(counter: int, taken: bool, maximum: int = 3) -> int:
    """Advance a saturating counter toward taken (up) or not-taken (down)."""
    if taken:
        return counter + 1 if counter < maximum else counter
    return counter - 1 if counter > 0 else counter
