"""Indirect-branch target predictors.

§IV-B of the paper singles out indirect-branch support as a model fix the
micro-benchmarks (CS1, a case statement) exposed: the initial model had
none, the tuned model gained a configurable indirect predictor. We provide
three levels: none (always mispredicts polymorphic targets), last-target
(BTB-style), and a tagged history-based predictor (ITTAGE-flavoured).
"""

from __future__ import annotations


class IndirectPredictor:
    """Predicts the target of indirect branches."""

    kind = "abstract"

    def predict(self, pc: int) -> int:
        """Predicted target pc, or -1 for no prediction."""
        raise NotImplementedError

    def update(self, pc: int, target: int) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class NoIndirectPredictor(IndirectPredictor):
    """No dedicated indirect predictor: never predicts a target.

    Every dynamic indirect branch redirects the front end, the behaviour
    of the paper's initial in-order model.
    """

    kind = "none"

    def predict(self, pc: int) -> int:
        return -1

    def update(self, pc: int, target: int) -> None:
        pass

    def reset(self) -> None:
        pass


class LastTargetPredictor(IndirectPredictor):
    """Predicts the last observed target per branch (direct-mapped table)."""

    kind = "last-target"

    def __init__(self, entries: int = 256) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._targets = [-1] * entries
        self._tags = [-1] * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def predict(self, pc: int) -> int:
        idx = self._index(pc)
        if self._tags[idx] == pc:
            return self._targets[idx]
        return -1

    def update(self, pc: int, target: int) -> None:
        idx = self._index(pc)
        self._tags[idx] = pc
        self._targets[idx] = target

    def reset(self) -> None:
        self._targets = [-1] * self.entries
        self._tags = [-1] * self.entries


class TaggedIndirectPredictor(IndirectPredictor):
    """History-tagged indirect predictor (ITTAGE-lite).

    Indexes a table with ``hash(pc, path_history)`` so different dynamic
    contexts of the same polymorphic branch map to different entries —
    enough to capture regular switch dispatch patterns that defeat
    last-target prediction. Falls back to a last-target table when the
    tagged table misses.
    """

    kind = "tagged"

    def __init__(self, entries: int = 512, history_bits: int = 8) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if not 1 <= history_bits <= 16:
            raise ValueError("history_bits out of range [1, 16]")
        self.entries = entries
        self.history_bits = history_bits
        self._hist_mask = (1 << history_bits) - 1
        self._history = 0
        self._tagged_targets = [-1] * entries
        self._tagged_tags = [-1] * entries
        self._fallback = LastTargetPredictor(entries)

    def _tagged_index(self, pc: int) -> tuple:
        key = ((pc >> 2) ^ (self._history * 0x9E3779B1)) & 0xFFFFFFFF
        return key % self.entries, key

    def predict(self, pc: int) -> int:
        idx, key = self._tagged_index(pc)
        if self._tagged_tags[idx] == key:
            return self._tagged_targets[idx]
        return self._fallback.predict(pc)

    def update(self, pc: int, target: int) -> None:
        idx, key = self._tagged_index(pc)
        self._tagged_tags[idx] = key
        self._tagged_targets[idx] = target
        self._fallback.update(pc, target)
        # Path history folds in low target bits, giving per-context indices.
        self._history = ((self._history << 2) ^ (target >> 2)) & self._hist_mask

    def reset(self) -> None:
        self._history = 0
        self._tagged_targets = [-1] * self.entries
        self._tagged_tags = [-1] * self.entries
        self._fallback.reset()
