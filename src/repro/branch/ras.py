"""Return-address stack."""

from __future__ import annotations


class ReturnAddressStack:
    """Circular return-address stack.

    Overflow overwrites the oldest entry (as real RAS hardware does), so
    deep call chains mispredict the outermost returns — behaviour the
    call-/return-heavy micro-benchmarks are sensitive to.
    """

    __slots__ = ("entries", "_stack", "_top", "_depth")

    def __init__(self, entries: int = 8) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._stack = [0] * entries
        self._top = 0
        self._depth = 0

    def push(self, return_pc: int) -> None:
        self._stack[self._top] = return_pc
        self._top = (self._top + 1) % self.entries
        if self._depth < self.entries:
            self._depth += 1

    def pop(self) -> int:
        """Pop and return the predicted return address (-1 if empty)."""
        if self._depth == 0:
            return -1
        self._top = (self._top - 1) % self.entries
        self._depth -= 1
        return self._stack[self._top]

    @property
    def depth(self) -> int:
        return self._depth

    def reset(self) -> None:
        self._top = 0
        self._depth = 0
