"""Composite branch unit used by the core timing models.

One ``access`` call per dynamic control-flow instruction classifies the
front-end outcome — no redirect, a full mispredict flush, or a
BTB-miss fetch bubble — and keeps the per-type counters that the
component-focused cost functions (§III-A step 5) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.base import DirectionPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.indirect import IndirectPredictor
from repro.branch.ras import ReturnAddressStack
from repro.isa.opclasses import OpClass

_BRANCH = int(OpClass.BRANCH)
_JUMP = int(OpClass.JUMP)
_IBRANCH = int(OpClass.IBRANCH)
_CALL = int(OpClass.CALL)
_RET = int(OpClass.RET)

#: ``access`` return codes.
REDIRECT_NONE = 0
REDIRECT_MISPREDICT = 1
REDIRECT_BTB = 2


def build_direction_predictor(kind: str, bits: int) -> DirectionPredictor:
    """Instantiate a direction predictor by registry ``kind``.

    Dispatches through the component registry
    (:mod:`repro.components`); ``bits`` maps onto each predictor's
    declared size knob (static predictors bind nothing and ignore it).
    """
    from repro.components import build_component

    return build_component("direction", kind, {"predictor_bits": bits})


def build_indirect_predictor(kind: str, entries: int, history_bits: int = 8) -> IndirectPredictor:
    """Instantiate an indirect predictor by registry ``kind``.

    Dispatches through the component registry (:mod:`repro.components`).
    """
    from repro.components import build_component

    return build_component("indirect", kind, {
        "indirect_entries": entries,
        "indirect_history_bits": history_bits,
    })


@dataclass(slots=True)
class BranchStats:
    """Counters exposed to the perf interface and cost functions."""

    branches: int = 0
    mispredicts: int = 0
    direction_mispredicts: int = 0
    btb_misses: int = 0
    indirect_mispredicts: int = 0
    ras_mispredicts: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def merge(self, other: "BranchStats") -> None:
        self.branches += other.branches
        self.mispredicts += other.mispredicts
        self.direction_mispredicts += other.direction_mispredicts
        self.btb_misses += other.btb_misses
        self.indirect_mispredicts += other.indirect_mispredicts
        self.ras_mispredicts += other.ras_mispredicts


class BranchUnit:
    """Direction predictor + BTB + RAS + indirect predictor.

    ``access`` returns ``REDIRECT_NONE`` when fetch continues unhindered,
    ``REDIRECT_MISPREDICT`` for a full flush (wrong direction, wrong
    indirect target, wrong RAS prediction) and ``REDIRECT_BTB`` for the
    cheaper front-end bubble of a correctly predicted taken branch whose
    target was not in the BTB.
    """

    __slots__ = ("direction", "btb", "ras", "indirect", "stats",
                 "_predict", "_btb_insert", "_btb_lookup_insert",
                 "_ras_push", "_ras_pop", "_ind_predict", "_ind_update")

    def __init__(
        self,
        direction: DirectionPredictor,
        btb: BranchTargetBuffer,
        ras: ReturnAddressStack,
        indirect: IndirectPredictor,
    ) -> None:
        self.direction = direction
        self.btb = btb
        self.ras = ras
        self.indirect = indirect
        self.stats = BranchStats()
        # Pre-resolved component entry points for the per-branch hot
        # call (the components mutate in place on reset, so these bound
        # methods stay valid for the unit's lifetime).
        self._predict = direction.predict_update
        self._btb_insert = btb.insert
        self._btb_lookup_insert = btb.lookup_insert
        self._ras_push = ras.push
        self._ras_pop = ras.pop
        self._ind_predict = indirect.predict
        self._ind_update = indirect.update

    def access(self, opclass: int, pc: int, taken: bool, target: int) -> int:
        """Process one dynamic branch; returns a ``REDIRECT_*`` code."""
        stats = self.stats
        stats.branches += 1
        redirect = REDIRECT_NONE

        if opclass == _BRANCH:
            prediction = self._predict(pc, taken)
            if prediction != taken:
                stats.direction_mispredicts += 1
                redirect = REDIRECT_MISPREDICT
            if taken:
                if redirect == REDIRECT_NONE:
                    # Fused lookup+insert; a skipped lookup (mispredict)
                    # must not refresh LRU state, hence the split below.
                    if self._btb_lookup_insert(pc, target) != target:
                        stats.btb_misses += 1
                        redirect = REDIRECT_BTB
                else:
                    self._btb_insert(pc, target)
        elif opclass == _JUMP:
            if self._btb_lookup_insert(pc, target) != target:
                stats.btb_misses += 1
                redirect = REDIRECT_BTB
        elif opclass == _CALL:
            if self._btb_lookup_insert(pc, target) != target:
                stats.btb_misses += 1
                redirect = REDIRECT_BTB
            self._ras_push(pc + 4)
        elif opclass == _RET:
            if not taken:
                # Top-level return treated as fall-through; no redirect.
                return REDIRECT_NONE
            if self._ras_pop() != target:
                stats.ras_mispredicts += 1
                redirect = REDIRECT_MISPREDICT
        elif opclass == _IBRANCH:
            if self._ind_predict(pc) != target:
                stats.indirect_mispredicts += 1
                redirect = REDIRECT_MISPREDICT
            self._ind_update(pc, target)
        else:
            raise ValueError(f"opclass {opclass} is not a branch")

        if redirect != REDIRECT_NONE:
            stats.mispredicts += 1
        return redirect

    def reset(self) -> None:
        self.direction.reset()
        self.btb.reset()
        self.ras.reset()
        self.indirect.reset()
        self.stats = BranchStats()
