"""Tournament (Alpha-21264-style) direction predictor."""

from __future__ import annotations

from repro.branch.base import DirectionPredictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor


class TournamentPredictor(DirectionPredictor):
    """Bimodal + gshare components arbitrated by a per-PC chooser.

    The chooser is a table of 2-bit counters: >=2 selects the global
    (gshare) component. Chooser training moves toward whichever component
    was correct when they disagree.
    """

    kind = "tournament"

    __slots__ = ("history_bits", "chooser_bits", "_bimodal", "_gshare",
                 "_chooser_mask", "_chooser")

    def __init__(self, history_bits: int = 12, chooser_bits: int = 12) -> None:
        self.history_bits = history_bits
        self.chooser_bits = chooser_bits
        self._bimodal = BimodalPredictor(index_bits=history_bits)
        self._gshare = GSharePredictor(history_bits=history_bits)
        self._chooser_mask = (1 << chooser_bits) - 1
        self._chooser = [2] * (1 << chooser_bits)

    def predict(self, pc: int) -> bool:
        use_global = self._chooser[(pc >> 2) & self._chooser_mask] >= 2
        return self._gshare.predict(pc) if use_global else self._bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        local_pred = self._bimodal.predict(pc)
        global_pred = self._gshare.predict(pc)
        idx = (pc >> 2) & self._chooser_mask
        if local_pred != global_pred:
            counter = self._chooser[idx]
            if global_pred == taken:
                if counter < 3:
                    self._chooser[idx] = counter + 1
            elif counter > 0:
                self._chooser[idx] = counter - 1
        self._bimodal.update(pc, taken)
        self._gshare.update(pc, taken)

    def predict_update(self, pc: int, taken: bool) -> bool:
        local_pred = self._bimodal.predict(pc)
        global_pred = self._gshare.predict(pc)
        idx = (pc >> 2) & self._chooser_mask
        chooser = self._chooser
        counter = chooser[idx]
        prediction = global_pred if counter >= 2 else local_pred
        if local_pred != global_pred:
            if global_pred == taken:
                if counter < 3:
                    chooser[idx] = counter + 1
            elif counter > 0:
                chooser[idx] = counter - 1
        self._bimodal.update(pc, taken)
        self._gshare.update(pc, taken)
        return prediction

    def reset(self) -> None:
        self._bimodal.reset()
        self._gshare.reset()
        self._chooser = [2] * (1 << self.chooser_bits)
