"""TAGE-lite direction predictor.

A compact TAgged GEometric-history predictor (Seznec & Michaud): a
bimodal base table plus three partially-tagged tables indexed by the PC
hashed with geometrically growing global-history lengths. The longest
matching tagged table provides the prediction; on a mispredict a new
entry is allocated in one longer table. This is the strongest direction
predictor the registry offers — added through the component registry
alone (stage-3 tuning space), the worked example of
``docs/COMPONENTS.md``.
"""

from __future__ import annotations

from repro.branch.base import DirectionPredictor

#: Geometric history lengths of the three tagged tables.
_HISTORY_LENGTHS = (5, 15, 44)
_TAG_BITS = 8
_CTR_MAX = 7       # 3-bit signed-ish counter, taken when >= 4
_USEFUL_MAX = 3    # 2-bit useful counter


class TAGEPredictor(DirectionPredictor):
    """Bimodal base + 3 tagged geometric-history tables (TAGE-lite).

    ``table_bits`` sizes the base table (``2**table_bits`` counters);
    each tagged table holds ``2**(table_bits - 1)`` entries of
    ``(tag, prediction counter, useful counter)``. All state evolution
    is deterministic: allocation on a mispredict takes the first
    longer-history table whose entry is not useful, else ages one.
    """

    kind = "tage"

    __slots__ = ("table_bits", "_base_mask", "_base", "_tag_mask",
                 "_tagged_bits", "_tagged_mask", "_tables", "_history",
                 "_hist_masks")

    def __init__(self, table_bits: int = 12) -> None:
        if not 4 <= table_bits <= 24:
            raise ValueError(f"table_bits out of range [4, 24]: {table_bits}")
        self.table_bits = table_bits
        self._base_mask = (1 << table_bits) - 1
        self._tagged_bits = max(4, table_bits - 1)
        self._tagged_mask = (1 << self._tagged_bits) - 1
        self._tag_mask = (1 << _TAG_BITS) - 1
        self._hist_masks = tuple((1 << length) - 1 for length in _HISTORY_LENGTHS)
        self._history = 0
        self._base = [2] * (1 << table_bits)  # 2-bit counters, weakly taken
        #: Per tagged table: [tag, ctr, useful] entries.
        self._tables = [
            [[-1, 4, 0] for _ in range(1 << self._tagged_bits)]
            for _ in _HISTORY_LENGTHS
        ]

    # ------------------------------------------------------------------
    def _fold(self, history: int, bits: int) -> int:
        """Fold ``history`` down to ``bits`` bits by XOR segments."""
        folded = 0
        mask = (1 << bits) - 1
        while history:
            folded ^= history & mask
            history >>= bits
        return folded

    def _indices(self, pc: int):
        """Per-table (index, tag) pairs for the branch at ``pc``."""
        base_pc = pc >> 2
        out = []
        for level, hist_mask in enumerate(self._hist_masks):
            hist = self._history & hist_mask
            folded = self._fold(hist, self._tagged_bits)
            idx = (base_pc ^ folded ^ (base_pc >> (level + 3))) & self._tagged_mask
            tag = (base_pc ^ (base_pc >> _TAG_BITS)
                   ^ self._fold(hist, _TAG_BITS) ^ level) & self._tag_mask
            out.append((idx, tag))
        return out

    # ------------------------------------------------------------------
    def predict(self, pc: int) -> bool:
        slots = self._indices(pc)
        provider = None
        for level in range(len(self._tables) - 1, -1, -1):
            idx, tag = slots[level]
            entry = self._tables[level][idx]
            if entry[0] == tag:
                provider = entry
                break
        if provider is not None:
            return provider[1] >= 4
        return self._base[(pc >> 2) & self._base_mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        self.predict_update(pc, taken)

    def predict_update(self, pc: int, taken: bool) -> bool:
        """Predict, then train provider/alternate and allocate on a miss."""
        slots = self._indices(pc)
        tables = self._tables
        provider_level = -1
        provider = None
        for level in range(len(tables) - 1, -1, -1):
            idx, tag = slots[level]
            entry = tables[level][idx]
            if entry[0] == tag:
                provider_level = level
                provider = entry
                break

        base_idx = (pc >> 2) & self._base_mask
        base_ctr = self._base[base_idx]
        if provider is not None:
            prediction = provider[1] >= 4
        else:
            prediction = base_ctr >= 2

        # Train the provider (tagged counter or the bimodal base).
        if provider is not None:
            ctr = provider[1]
            if taken:
                if ctr < _CTR_MAX:
                    provider[1] = ctr + 1
            elif ctr > 0:
                provider[1] = ctr - 1
            useful = provider[2]
            if prediction == taken:
                if useful < _USEFUL_MAX:
                    provider[2] = useful + 1
            elif useful > 0:
                provider[2] = useful - 1
        if taken:
            if base_ctr < 3:
                self._base[base_idx] = base_ctr + 1
        elif base_ctr > 0:
            self._base[base_idx] = base_ctr - 1

        # Allocate in one longer-history table after a mispredict.
        if prediction != taken and provider_level < len(tables) - 1:
            allocated = False
            for level in range(provider_level + 1, len(tables)):
                idx, tag = slots[level]
                entry = tables[level][idx]
                if entry[2] == 0:
                    entry[0] = tag
                    entry[1] = 4 if taken else 3  # weak in the right direction
                    entry[2] = 0
                    allocated = True
                    break
            if not allocated:
                for level in range(provider_level + 1, len(tables)):
                    idx, _tag = slots[level]
                    entry = tables[level][idx]
                    if entry[2] > 0:
                        entry[2] -= 1  # age toward future allocation

        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & self._hist_masks[-1]
        return prediction

    def reset(self) -> None:
        self._history = 0
        self._base = [2] * (1 << self.table_bits)
        self._tables = [
            [[-1, 4, 0] for _ in range(1 << self._tagged_bits)]
            for _ in _HISTORY_LENGTHS
        ]
