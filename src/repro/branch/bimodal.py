"""Bimodal (per-PC 2-bit counter) direction predictor."""

from __future__ import annotations

from repro.branch.base import DirectionPredictor


class BimodalPredictor(DirectionPredictor):
    """Classic table of 2-bit saturating counters indexed by PC.

    ``index_bits`` sets the table size (``2**index_bits`` counters);
    counters initialise to weakly-taken (2).
    """

    kind = "bimodal"

    __slots__ = ("index_bits", "_mask", "_table")

    def __init__(self, index_bits: int = 12) -> None:
        if not 2 <= index_bits <= 24:
            raise ValueError(f"index_bits out of range [2, 24]: {index_bits}")
        self.index_bits = index_bits
        self._mask = (1 << index_bits) - 1
        self._table = [2] * (1 << index_bits)

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        counter = self._table[idx]
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1

    def predict_update(self, pc: int, taken: bool) -> bool:
        idx = (pc >> 2) & self._mask
        table = self._table
        counter = table[idx]
        if taken:
            if counter < 3:
                table[idx] = counter + 1
        elif counter > 0:
            table[idx] = counter - 1
        return counter >= 2

    def reset(self) -> None:
        self._table = [2] * (1 << self.index_bits)
