"""Memory-hierarchy micro-benchmarks (Table I, first group).

Fifteen kernels touching data sets at every level of the hierarchy:
conflict misses, dependent (pointer-chase) accesses, instruction-cache
capacity and conflict stress, L2 latency and bandwidth, DRAM-resident
working sets, and dynamically random access. ``MM`` and ``M_Dyn``
default to *uninitialised* arrays to reproduce the §IV-B anomaly (real
hardware serves untouched pages from the OS zero page and looks like it
hits, while the simulator model misses); their ``initialized=True``
variant is the paper's fix.
"""

from __future__ import annotations

from repro.frontend.builder import ProgramBuilder
from repro.frontend.program import (
    ChaseAddr,
    ListAddr,
    PatternTaken,
    RandomAddr,
    SequentialAddr,
)
from repro.isa.opclasses import OpClass
from repro.isa.registers import int_reg
from repro.workloads.base import Workload
from repro.workloads.microbench.common import (
    DATA_BASE,
    LINE,
    X_ACC,
    X_COND,
    X_DATA,
    X_PTR,
    X_TMP,
    counted_loop,
    init_pages,
    scaled,
)

CATEGORY = "memory"


def _mc(scale: float) -> "Program":
    """MC — L1D conflict misses.

    Eight addresses spaced exactly one L1D way apart (8 KB for a 32 KB
    4-way cache) thrash a masked-indexed 4-way set; xor/Mersenne hashing
    or a victim cache absorbs them. Discriminates the hashing and
    victim-cache parameters.
    """
    b = ProgramBuilder("MC")
    window = 8 * 8192
    init_pages(b, DATA_BASE, window)
    addrs = [DATA_BASE + i * 8192 for i in range(8)]
    b.label("loop")
    pattern = ListAddr(addrs)
    for k in range(8):
        b.load(int_reg(6 + k), pattern)
    b.op(OpClass.IALU, X_ACC, X_ACC, int_reg(6))
    counted_loop(b, "loop", scaled(24, scale))
    return b.build()


def _mcs(scale: float) -> "Program":
    """MCS — conflict misses with interleaved stores (dirty victims)."""
    b = ProgramBuilder("MCS")
    window = 8 * 8192
    init_pages(b, DATA_BASE, window)
    addrs = [DATA_BASE + i * 8192 for i in range(8)]
    b.label("loop")
    lp = ListAddr(addrs)
    sp = ListAddr([a + LINE for a in addrs])
    for k in range(4):
        b.load(int_reg(6 + k), lp)
        b.store(X_DATA, sp)
    counted_loop(b, "loop", scaled(24, scale))
    return b.build()


def _md(scale: float) -> "Program":
    """MD — dependent loads (pointer chase) resident in the L1D."""
    b = ProgramBuilder("MD")
    window = 4096
    init_pages(b, DATA_BASE, window)
    chase = ChaseAddr(DATA_BASE, window // LINE, seed=11)
    b.label("loop")
    for _ in range(16):
        b.load(X_PTR, chase, base=X_PTR)
    counted_loop(b, "loop", scaled(12, scale))
    return b.build()


def _mi(scale: float) -> "Program":
    """MI — large straight-line code footprint that still fits the L1I."""
    b = ProgramBuilder("MI")
    body = 2400  # ~9.6 KB of code
    b.label("loop")
    for k in range(body):
        b.op(OpClass.IALU, int_reg(6 + k % 8), X_ACC, X_DATA)
    counted_loop(b, "loop", scaled(2, scale))
    return b.build()


def _mim(scale: float) -> "Program":
    """MIM — instruction-cache capacity misses.

    640 eight-instruction blocks chained by jumps, placed 4160 B apart:
    640 distinct lines (> 512-line L1I capacity) spread over all sets,
    so a pass misses continuously once the cache has wrapped.
    """
    b = ProgramBuilder("MIM")
    blocks = 640
    b.label("loop")
    for blk in range(blocks):
        b.label(f"b{blk}")
        for k in range(7):
            b.op(OpClass.IALU, int_reg(6 + k % 8), X_ACC, X_DATA)
        if blk + 1 < blocks:
            b.jump(f"b{blk + 1}")
            b.org_gap(4160 - 8 * 4)
    counted_loop(b, "loop", scaled(2, scale))
    return b.build()


def _mim2(scale: float) -> "Program":
    """MIM2 — instruction-cache conflict misses.

    Six blocks placed exactly one L1I way apart (16 KB for a 32 KB 2-way
    cache) map to the same sets and thrash a 2-way cache despite a tiny
    total footprint.
    """
    b = ProgramBuilder("MIM2")
    blocks = 6
    b.label("loop")
    for blk in range(blocks):
        b.label(f"b{blk}")
        for k in range(7):
            b.op(OpClass.IALU, int_reg(6 + k % 8), X_ACC, X_DATA)
        if blk + 1 < blocks:
            b.jump(f"b{blk + 1}")
            b.org_gap(16 * 1024 - 8 * 4)
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _mip(scale: float) -> "Program":
    """MIP — instruction footprint plus branch pressure.

    128 blocks, each a conditional hammock, spread over 64 KB: exercises
    the BTB reach and the L1I at the same time.
    """
    b = ProgramBuilder("MIP")
    blocks = 128
    b.label("loop")
    for blk in range(blocks):
        b.label(f"b{blk}")
        b.branch(f"s{blk}", PatternTaken("TN"), cond_reg=X_COND)
        b.op(OpClass.IALU, X_TMP, X_ACC, X_DATA)
        b.op(OpClass.IALU, X_ACC, X_TMP, X_DATA)
        b.label(f"s{blk}")
        b.op(OpClass.IALU, int_reg(6 + blk % 8), X_ACC, X_DATA)
        if blk + 1 < blocks:
            b.org_gap(512 - 5 * 4)
    counted_loop(b, "loop", scaled(4, scale))
    return b.build()


def _ml2(scale: float) -> "Program":
    """ML2 — dependent loads resident in the L2 (chase over 128 KB)."""
    b = ProgramBuilder("ML2")
    window = 128 * 1024
    init_pages(b, DATA_BASE, window)
    chase = ChaseAddr(DATA_BASE, window // LINE, seed=13)
    b.label("loop")
    for _ in range(16):
        b.load(X_PTR, chase, base=X_PTR)
    counted_loop(b, "loop", scaled(10, scale))
    return b.build()


def _ml2_bw(kind: str, scale: float) -> "Program":
    """Shared body of the ML2 bandwidth kernels (independent accesses)."""
    b = ProgramBuilder(f"ML2_BW{kind}")
    window = 128 * 1024
    init_pages(b, DATA_BASE, window)
    b.label("loop")
    lp = SequentialAddr(DATA_BASE, LINE, window)
    sp = SequentialAddr(DATA_BASE + window, LINE, window)
    if kind == "ld":
        for k in range(8):
            b.load(int_reg(6 + k), lp)
    elif kind == "st":
        for _ in range(8):
            b.store(X_DATA, sp)
    else:  # ldst
        for k in range(4):
            b.load(int_reg(6 + k), lp)
            b.store(X_DATA, sp)
    counted_loop(b, "loop", scaled(24, scale))
    return b.build()


def _ml2_bwld(scale: float) -> "Program":
    """ML2_BWld — independent load stream from the L2 (MSHR/bandwidth)."""
    return _ml2_bw("ld", scale)


def _ml2_bwldst(scale: float) -> "Program":
    """ML2_BWldst — mixed load/store stream hitting the L2."""
    return _ml2_bw("ldst", scale)


def _ml2_bwst(scale: float) -> "Program":
    """ML2_BWst — store stream to the L2 (store-buffer drain bound)."""
    return _ml2_bw("st", scale)


def _ml2_st(scale: float) -> "Program":
    """ML2_st — strided stores over an L2-resident set with reuse."""
    b = ProgramBuilder("ML2_st")
    window = 96 * 1024
    init_pages(b, DATA_BASE, window)
    b.label("loop")
    sp = SequentialAddr(DATA_BASE, 2 * LINE, window)
    for _ in range(6):
        b.store(X_DATA, sp)
        b.op(OpClass.IALU, X_ACC, X_ACC, X_DATA)
    counted_loop(b, "loop", scaled(30, scale))
    return b.build()


def _mm(scale: float, initialized: bool = False) -> "Program":
    """MM — DRAM-resident loads (4 MB working set).

    Defaults to an *uninitialised* array: the board serves untouched
    pages from the zero page (fast), the model misses to DRAM — the
    paper's §IV-B anomaly. ``initialized=True`` is the fix.
    """
    b = ProgramBuilder("MM")
    window = 4 * 1024 * 1024
    if initialized:
        init_pages(b, DATA_BASE, window)
    chase = ChaseAddr(DATA_BASE, window // LINE, seed=17)
    b.label("loop")
    for _ in range(8):
        b.load(X_PTR, chase, base=X_PTR)
    counted_loop(b, "loop", scaled(20, scale))
    return b.build()


def _mm_st(scale: float) -> "Program":
    """MM_st — store stream over a DRAM-resident set."""
    b = ProgramBuilder("MM_st")
    window = 4 * 1024 * 1024
    b.label("loop")
    sp = SequentialAddr(DATA_BASE, LINE, window)
    for _ in range(8):
        b.store(X_DATA, sp)
    counted_loop(b, "loop", scaled(24, scale))
    return b.build()


def _m_dyn(scale: float, initialized: bool = False) -> "Program":
    """M_Dyn — dynamically random loads over 2 MB (TLB/DRAM stress).

    Also defaults to uninitialised pages (see ``MM``).
    """
    b = ProgramBuilder("M_Dyn")
    window = 2 * 1024 * 1024
    if initialized:
        init_pages(b, DATA_BASE, window)
    b.label("loop")
    rp = RandomAddr(DATA_BASE, window, seed=19, align=LINE)
    for k in range(8):
        b.load(int_reg(6 + k), rp)
    counted_loop(b, "loop", scaled(20, scale))
    return b.build()


MEMORY_BENCHMARKS = [
    Workload("MC", CATEGORY, _mc.__doc__, _mc, "1.8M"),
    Workload("MCS", CATEGORY, _mcs.__doc__, _mcs, "115K"),
    Workload("MD", CATEGORY, _md.__doc__, _md, "33K"),
    Workload("MI", CATEGORY, _mi.__doc__, _mi, "22M", max_instructions=12_000),
    Workload("MIM", CATEGORY, _mim.__doc__, _mim, "5.25M", max_instructions=12_000),
    Workload("MIM2", CATEGORY, _mim2.__doc__, _mim2, "214K"),
    Workload("MIP", CATEGORY, _mip.__doc__, _mip, "66M", max_instructions=12_000),
    Workload("ML2", CATEGORY, _ml2.__doc__, _ml2, "131K"),
    Workload("ML2_BWld", CATEGORY, _ml2_bwld.__doc__, _ml2_bwld, "3.15M"),
    Workload("ML2_BWldst", CATEGORY, _ml2_bwldst.__doc__, _ml2_bwldst, "107K"),
    Workload("ML2_BWst", CATEGORY, _ml2_bwst.__doc__, _ml2_bwst, "8.4K"),
    Workload("ML2_st", CATEGORY, _ml2_st.__doc__, _ml2_st, "164K"),
    Workload("MM", CATEGORY, _mm.__doc__, _mm, "1.05M", default_kwargs={"initialized": False}),
    Workload("MM_st", CATEGORY, _mm_st.__doc__, _mm_st, "1.97M"),
    Workload(
        "M_Dyn", CATEGORY, _m_dyn.__doc__, _m_dyn, "1.5M", default_kwargs={"initialized": False}
    ),
]
