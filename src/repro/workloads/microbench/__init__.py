"""The 40-kernel targeted micro-benchmark suite (Table I).

Modelled on the VerticalResearchGroup `microbench` suite the paper uses:
five categories — memory hierarchy, control flow, data-parallel/FP,
execution dependences, store-intensive — each kernel stressing one
processor component so the tuner's cost signal isolates modelling errors
per component (§III-B). Dynamic instruction counts are scaled down
uniformly from the paper's (kept as metadata) so tens of thousands of
tuning simulations stay affordable.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.microbench.control import CONTROL_BENCHMARKS
from repro.workloads.microbench.dataparallel import DATAPARALLEL_BENCHMARKS
from repro.workloads.microbench.execution import EXECUTION_BENCHMARKS
from repro.workloads.microbench.memory import MEMORY_BENCHMARKS
from repro.workloads.microbench.stores import STORE_BENCHMARKS

#: All 40 kernels in Table I order (memory, control, data-parallel,
#: execution, store).
ALL_MICROBENCHMARKS = (
    MEMORY_BENCHMARKS
    + CONTROL_BENCHMARKS
    + DATAPARALLEL_BENCHMARKS
    + EXECUTION_BENCHMARKS
    + STORE_BENCHMARKS
)

MICROBENCHMARKS = {wl.name: wl for wl in ALL_MICROBENCHMARKS}

CATEGORIES = ("memory", "control", "dataparallel", "execution", "store")


def get_microbenchmark(name: str) -> Workload:
    """Look up one kernel by its Table I name (e.g. ``"ML2_BWld"``)."""
    try:
        return MICROBENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown micro-benchmark {name!r}; see list_microbenchmarks()"
        ) from None


def list_microbenchmarks(category: str = None) -> list:
    """All kernels, optionally filtered to one category."""
    if category is None:
        return list(ALL_MICROBENCHMARKS)
    if category not in CATEGORIES:
        raise ValueError(f"unknown category {category!r}; choose from {CATEGORIES}")
    return [wl for wl in ALL_MICROBENCHMARKS if wl.category == category]


__all__ = [
    "ALL_MICROBENCHMARKS",
    "MICROBENCHMARKS",
    "CATEGORIES",
    "get_microbenchmark",
    "list_microbenchmarks",
]
