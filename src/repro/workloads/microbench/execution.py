"""Execution-unit micro-benchmarks (Table I, fourth group).

Five kernels of integer and floating-point operations with dependence
chains of varying length — the group that isolates functional-unit
latency, pipelining and contention parameters. ``ED1`` is the paper's
Figure-4 outlier: a serial divide chain whose CPI explodes when the
model carries a dated divide-latency guess.
"""

from __future__ import annotations

from repro.frontend.builder import ProgramBuilder
from repro.isa.opclasses import OpClass
from repro.isa.registers import fp_reg, int_reg
from repro.workloads.base import Workload
from repro.workloads.microbench.common import X_ACC, X_DATA, counted_loop, scaled

CATEGORY = "execution"


def _ed1(scale: float) -> "Program":
    """ED1 — serial integer-divide dependence chain (latency-bound).

    Every divide consumes the previous divide's quotient: throughput is
    exactly the effective divide latency. With the public config's dated
    20-cycle guess against the silicon's early-exit divider this kernel
    shows the several-fold untuned error of Figure 4.
    """
    b = ProgramBuilder("ED1")
    acc = int_reg(6)
    b.label("loop")
    for _ in range(8):
        b.op(OpClass.IDIV, acc, acc, X_DATA)
    counted_loop(b, "loop", scaled(24, scale))
    return b.build()


def _ef(scale: float) -> "Program":
    """EF — independent FP operations (FP-unit throughput/contention)."""
    b = ProgramBuilder("EF")
    b.label("loop")
    for k in range(4):
        b.op(OpClass.FPALU, fp_reg(2 + k), fp_reg(10 + k), fp_reg(0))
        b.op(OpClass.FPMUL, fp_reg(6 + k), fp_reg(10 + k), fp_reg(1))
    counted_loop(b, "loop", scaled(55, scale))
    return b.build()


def _ei(scale: float) -> "Program":
    """EI — independent integer ALU operations (dual-issue throughput)."""
    b = ProgramBuilder("EI")
    b.label("loop")
    for k in range(12):
        b.op(OpClass.IALU, int_reg(6 + k % 8), X_ACC, X_DATA)
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _em1(scale: float) -> "Program":
    """EM1 — serial integer-multiply chain (multiply latency probe)."""
    b = ProgramBuilder("EM1")
    acc = int_reg(6)
    b.label("loop")
    for _ in range(10):
        b.op(OpClass.IMUL, acc, acc, X_DATA)
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _em5(scale: float) -> "Program":
    """EM5 — five independent multiply chains (multiply throughput)."""
    b = ProgramBuilder("EM5")
    b.label("loop")
    for _ in range(2):
        for k in range(5):
            reg = int_reg(6 + k)
            b.op(OpClass.IMUL, reg, reg, X_DATA)
    counted_loop(b, "loop", scaled(45, scale))
    return b.build()


EXECUTION_BENCHMARKS = [
    Workload("ED1", CATEGORY, _ed1.__doc__, _ed1, "164K"),
    Workload("EF", CATEGORY, _ef.__doc__, _ef, "451K"),
    Workload("EI", CATEGORY, _ei.__doc__, _ei, "5.24M"),
    Workload("EM1", CATEGORY, _em1.__doc__, _em1, "65K"),
    Workload("EM5", CATEGORY, _em5.__doc__, _em5, "328K"),
]
