"""Data-parallel / floating-point micro-benchmarks (Table I, third group).

Five kernels over data-parallel loops with double/float arithmetic and
conversions of varying complexity — the group whose §IV-B errors traced
back to arithmetic-unit timing/contention modelling and to decoder bugs
breaking FP dependences.
"""

from __future__ import annotations

from repro.frontend.builder import ProgramBuilder
from repro.frontend.program import SequentialAddr
from repro.isa.opclasses import OpClass
from repro.isa.registers import fp_reg, int_reg
from repro.workloads.base import Workload
from repro.workloads.microbench.common import (
    DATA_BASE,
    LINE,
    counted_loop,
    init_pages,
    scaled,
)

CATEGORY = "dataparallel"


def _dp1(name: str, op: OpClass, lanes: int, iters: int, scale: float) -> "Program":
    """L1-resident data-parallel loop: load, arithmetic per lane, store."""
    b = ProgramBuilder(name)
    window = 4 * 1024
    init_pages(b, DATA_BASE, window)
    init_pages(b, DATA_BASE + window, window)
    lp = SequentialAddr(DATA_BASE, 8, window)
    sp = SequentialAddr(DATA_BASE + window, 8, window)
    b.label("loop")
    for k in range(lanes):
        v_in = fp_reg(2 + k)
        v_out = fp_reg(2 + lanes + k)
        b.load(v_in, lp)
        b.op(op, v_out, v_in, fp_reg(0))
        b.store(v_out, sp)
    counted_loop(b, "loop", scaled(iters, scale))
    return b.build()


def _dp1d(scale: float) -> "Program":
    """DP1d — double-precision parallel add/store stream."""
    return _dp1("DP1d", OpClass.FPALU, 4, 180, scale)


def _dp1f(scale: float) -> "Program":
    """DP1f — single-precision parallel multiply/store stream."""
    return _dp1("DP1f", OpClass.FPMUL, 4, 180, scale)


def _dpcvt(scale: float) -> "Program":
    """DPcvt — conversion-heavy loop (int <-> float traffic)."""
    b = ProgramBuilder("DPcvt")
    window = 4 * 1024
    init_pages(b, DATA_BASE, window)
    lp = SequentialAddr(DATA_BASE, 8, window)
    b.label("loop")
    for k in range(4):
        v = fp_reg(2 + k)
        w = fp_reg(6 + k)
        b.load(v, lp)
        b.op(OpClass.FCVT, w, v)
        b.op(OpClass.FPALU, v, w, fp_reg(0))
        b.op(OpClass.FCVT, fp_reg(10 + k % 2), v)
    counted_loop(b, "loop", scaled(140, scale))
    return b.build()


def _dpt(scale: float) -> "Program":
    """DPT — single-precision triad: a[i] = b[i] + s * c[i]."""
    b = ProgramBuilder("DPT")
    window = 4 * 1024
    for region in range(3):
        init_pages(b, DATA_BASE + region * window, window)
    bp = SequentialAddr(DATA_BASE, 8, window)
    cp = SequentialAddr(DATA_BASE + window, 8, window)
    ap = SequentialAddr(DATA_BASE + 2 * window, 8, window)
    b.label("loop")
    for k in range(3):
        v_b = fp_reg(2 + k)
        v_c = fp_reg(6 + k)
        v_a = fp_reg(10 + k)
        b.load(v_b, bp)
        b.load(v_c, cp)
        b.op(OpClass.FPMUL, v_c, v_c, fp_reg(0))
        b.op(OpClass.FPALU, v_a, v_b, v_c)
        b.store(v_a, ap)
    counted_loop(b, "loop", scaled(130, scale))
    return b.build()


def _dptd(scale: float) -> "Program":
    """DPTd — double-precision triad with a longer multiply-add chain."""
    b = ProgramBuilder("DPTd")
    window = 4 * 1024
    for region in range(3):
        init_pages(b, DATA_BASE + region * window, window)
    bp = SequentialAddr(DATA_BASE, 8, window)
    cp = SequentialAddr(DATA_BASE + window, 8, window)
    ap = SequentialAddr(DATA_BASE + 2 * window, 8, window)
    b.label("loop")
    for k in range(3):
        v_b = fp_reg(2 + k)
        v_c = fp_reg(6 + k)
        v_a = fp_reg(10 + k)
        b.load(v_b, bp)
        b.load(v_c, cp)
        b.op(OpClass.FPMUL, v_c, v_c, fp_reg(0))
        b.op(OpClass.FPMUL, v_b, v_b, fp_reg(1))
        b.op(OpClass.FPALU, v_a, v_b, v_c)
        b.op(OpClass.FPALU, v_a, v_a, fp_reg(0))
        b.store(v_a, ap)
    counted_loop(b, "loop", scaled(110, scale))
    return b.build()


DATAPARALLEL_BENCHMARKS = [
    Workload("DP1d", CATEGORY, _dp1d.__doc__, _dp1d, "5.2M"),
    Workload("DP1f", CATEGORY, _dp1f.__doc__, _dp1f, "5.2M"),
    Workload("DPcvt", CATEGORY, _dpcvt.__doc__, _dpcvt, "36.7M"),
    Workload("DPT", CATEGORY, _dpt.__doc__, _dpt, "542K"),
    Workload("DPTd", CATEGORY, _dptd.__doc__, _dptd, "1.18M"),
]
