"""Store-intensive micro-benchmarks (Table I, fifth group).

Three kernels bounded by the store path: streaming stores past the L1
into the L2, bursty stores that fill the store buffer, and repeated
stores to the same lines that discriminate store-buffer coalescing.
"""

from __future__ import annotations

from repro.frontend.builder import ProgramBuilder
from repro.frontend.program import ListAddr, SequentialAddr
from repro.isa.opclasses import OpClass
from repro.isa.registers import int_reg
from repro.workloads.base import Workload
from repro.workloads.microbench.common import (
    DATA_BASE,
    LINE,
    X_ACC,
    X_DATA,
    counted_loop,
    init_pages,
    scaled,
)

CATEGORY = "store"


def _stl2(scale: float) -> "Program":
    """STL2 — streaming stores over an L2-resident set (drain-rate bound)."""
    b = ProgramBuilder("STL2")
    window = 256 * 1024
    init_pages(b, DATA_BASE, window)
    sp = SequentialAddr(DATA_BASE, LINE, window)
    b.label("loop")
    for _ in range(8):
        b.store(X_DATA, sp)
    counted_loop(b, "loop", scaled(20, scale))
    return b.build()


def _stl2b(scale: float) -> "Program":
    """STL2b — store bursts separated by compute (buffer-depth probe).

    Twelve back-to-back stores exceed small store buffers and stall; the
    following ALU stretch lets deep buffers drain. Discriminates the
    store-buffer entry count.
    """
    b = ProgramBuilder("STL2b")
    window = 256 * 1024
    init_pages(b, DATA_BASE, window)
    sp = SequentialAddr(DATA_BASE, LINE, window)
    b.label("loop")
    for _ in range(12):
        b.store(X_DATA, sp)
    for k in range(12):
        b.op(OpClass.IALU, int_reg(6 + k % 8), X_ACC, X_DATA)
    counted_loop(b, "loop", scaled(18, scale))
    return b.build()


def _stc(scale: float) -> "Program":
    """STc — repeated stores to a handful of hot lines (coalescing probe).

    A coalescing store buffer merges most of these into resident
    entries; a non-coalescing one pays a drain per store.
    """
    b = ProgramBuilder("STc")
    init_pages(b, DATA_BASE, 4096)
    hot = ListAddr([DATA_BASE + k * LINE for k in range(4)])
    b.label("loop")
    for _ in range(12):
        b.store(X_DATA, hot)
    counted_loop(b, "loop", scaled(25, scale))
    return b.build()


STORE_BENCHMARKS = [
    Workload("STL2", CATEGORY, _stl2.__doc__, _stl2, "4K"),
    Workload("STL2b", CATEGORY, _stl2b.__doc__, _stl2b, "1.12M"),
    Workload("STc", CATEGORY, _stc.__doc__, _stc, "400K"),
]
