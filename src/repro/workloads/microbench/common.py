"""Shared scaffolding for the micro-benchmark generators.

Conventions: ``x1`` is scratch data, ``x2`` the loop condition register,
``x5`` the pointer-chase register, ``x6..x13`` parallel load
destinations; ``v0..v7`` carry FP/SIMD values. Every kernel is an
initialisation pass (when its arrays must exist as written pages)
followed by a pattern-driven main loop closed by a counted branch.
"""

from __future__ import annotations

from repro.frontend.builder import ProgramBuilder
from repro.frontend.program import PatternTaken, SequentialAddr
from repro.isa.registers import fp_reg, int_reg

#: Base address of kernel data arrays.
DATA_BASE = 0x100_0000
#: Page size assumed by initialisation passes.
PAGE = 4096
LINE = 64

X_DATA = int_reg(1)
X_COND = int_reg(2)
X_PTR = int_reg(5)
X_TMP = int_reg(3)
X_ACC = int_reg(4)

V_ACC = fp_reg(0)
V_TMP = fp_reg(1)


def scaled(n: int, scale: float, minimum: int = 1) -> int:
    """Scale a loop count, never below ``minimum``."""
    return max(minimum, int(round(n * scale)))


def counted_loop(b: ProgramBuilder, label: str, iters: int, cond: int = X_COND) -> None:
    """Close a loop at ``label`` that executes ``iters`` times total.

    The closing branch is perfectly predictable after warm-up (taken
    ``iters - 1`` times, then not taken), so it does not perturb
    branch-focused kernels.
    """
    if iters < 1:
        raise ValueError("iters must be >= 1")
    if iters == 1:
        return
    b.branch(label, PatternTaken("T" * (iters - 1) + "N"), cond_reg=cond)


def init_pages(b: ProgramBuilder, base: int, window: int) -> None:
    """Touch every page of ``[base, base + window)`` with one store.

    Marks the pages written so the board's zero-page behaviour does not
    fire; kernels reproducing the paper's uninitialised-array anomaly
    skip this pass.
    """
    pages = max(1, window // PAGE)
    b.label(f"init-{base:x}")
    b.store(X_DATA, SequentialAddr(base, PAGE, window))
    if pages > 1:
        b.branch(f"init-{base:x}", PatternTaken("T" * (pages - 1) + "N"), cond_reg=X_DATA)
