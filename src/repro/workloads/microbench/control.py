"""Control-flow micro-benchmarks (Table I, second group).

Twelve kernels spanning easy-to-predict branches, heavily biased
branches, randomised flow, branches with large flush penalties, and the
indirect-branch case statements (CS1/CS3) whose high error exposed the
missing indirect-predictor support in the paper's initial model.
"""

from __future__ import annotations

from repro.frontend.builder import ProgramBuilder
from repro.frontend.program import (
    CycleTargets,
    PatternTaken,
    RandomTaken,
    RandomTargets,
    SequentialAddr,
)
from repro.isa.opclasses import OpClass
from repro.isa.registers import int_reg
from repro.workloads.base import Workload
from repro.workloads.microbench.common import (
    DATA_BASE,
    LINE,
    X_ACC,
    X_COND,
    X_DATA,
    X_TMP,
    counted_loop,
    init_pages,
    scaled,
)

CATEGORY = "control"


def _branch_field(b: ProgramBuilder, n_branches: int, pattern_for) -> None:
    """A field of forward hammocks, one per branch, with 2-op bodies."""
    for k in range(n_branches):
        b.branch(f"skip{k}", pattern_for(k), cond_reg=X_COND)
        b.op(OpClass.IALU, X_TMP, X_ACC, X_DATA)
        b.op(OpClass.IALU, X_ACC, X_TMP, X_DATA)
        b.label(f"skip{k}")


def _cca(scale: float) -> "Program":
    """CCa — always-taken branches (BTB/taken-bubble behaviour)."""
    b = ProgramBuilder("CCa")
    b.label("loop")
    _branch_field(b, 16, lambda k: PatternTaken("T"))
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _cce(scale: float) -> "Program":
    """CCe — easy periodic patterns every predictor learns."""
    b = ProgramBuilder("CCe")
    b.label("loop")
    _branch_field(b, 16, lambda k: PatternTaken("TTTN" if k % 2 else "TN"))
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _cch(scale: float) -> "Program":
    """CCh — hard 50/50 random branches (mispredict-penalty probe)."""
    b = ProgramBuilder("CCh")
    b.label("loop")
    _branch_field(b, 16, lambda k: RandomTaken(0.5, seed=100 + k))
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _cch_st(scale: float) -> "Program":
    """CCh_st — hard branches interleaved with stores."""
    b = ProgramBuilder("CCh_st")
    window = 32 * 1024
    init_pages(b, DATA_BASE, window)
    sp = SequentialAddr(DATA_BASE, LINE, window)
    b.label("loop")
    for k in range(8):
        b.branch(f"skip{k}", RandomTaken(0.5, seed=200 + k), cond_reg=X_COND)
        b.store(X_DATA, sp)
        b.op(OpClass.IALU, X_ACC, X_ACC, X_DATA)
        b.label(f"skip{k}")
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _ccl(scale: float) -> "Program":
    """CCl — branches resolved by long-latency divides (large flush cost).

    Each random branch consumes an integer-divide result, so a
    mispredict is discovered late; stresses the interaction between
    divide latency and the flush penalty.
    """
    b = ProgramBuilder("CCl")
    b.label("loop")
    for k in range(6):
        b.op(OpClass.IDIV, X_COND, X_ACC, X_DATA)
        b.branch(f"skip{k}", RandomTaken(0.5, seed=300 + k), cond_reg=X_COND)
        b.op(OpClass.IALU, X_TMP, X_ACC, X_DATA)
        b.label(f"skip{k}")
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _ccm(scale: float) -> "Program":
    """CCm — moderately biased branches (88% taken)."""
    b = ProgramBuilder("CCm")
    b.label("loop")
    _branch_field(b, 16, lambda k: RandomTaken(0.88, seed=400 + k))
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _cf1(scale: float) -> "Program":
    """CF1 — dense if/else diamonds with correlated outcomes."""
    b = ProgramBuilder("CF1")
    b.label("loop")
    for k in range(12):
        b.branch(f"else{k}", PatternTaken("TTNN"), cond_reg=X_COND)
        b.op(OpClass.IALU, X_TMP, X_ACC, X_DATA)
        b.jump(f"join{k}")
        b.label(f"else{k}")
        b.op(OpClass.IALU, X_TMP, X_DATA, X_ACC)
        b.label(f"join{k}")
        b.op(OpClass.IALU, X_ACC, X_TMP, X_DATA)
    counted_loop(b, "loop", scaled(30, scale))
    return b.build()


def _crd(scale: float) -> "Program":
    """CRd — random directions over a deep diamond cascade."""
    b = ProgramBuilder("CRd")
    b.label("loop")
    for k in range(12):
        b.branch(f"else{k}", RandomTaken(0.5, seed=500 + k), cond_reg=X_COND)
        b.op(OpClass.IALU, X_TMP, X_ACC, X_DATA)
        b.jump(f"join{k}")
        b.label(f"else{k}")
        b.op(OpClass.IALU, X_TMP, X_DATA, X_ACC)
        b.label(f"join{k}")
        b.op(OpClass.IALU, X_ACC, X_TMP, X_DATA)
    counted_loop(b, "loop", scaled(30, scale))
    return b.build()


def _crf(scale: float) -> "Program":
    """CRf — randomised flow through indirect jumps (pipeline flushes)."""
    b = ProgramBuilder("CRf")
    b.label("loop")
    dispatch = b.here()
    # Forward declaration: indirect targets fixed up after blocks exist.
    targets = []
    b.indirect(RandomTargets([0], seed=600), src=X_ACC)
    ind_inst = b._insts[-1]
    for k in range(8):
        targets.append(b.here())
        b.label(f"blk{k}")
        b.op(OpClass.IALU, X_ACC, X_ACC, X_DATA)
        if k + 1 < 8:
            b.jump("tail")
    b.label("tail")
    ind_inst.target_pattern = RandomTargets(targets, seed=600)
    counted_loop(b, "loop", scaled(100, scale))
    del dispatch
    return b.build()


def _crm(scale: float) -> "Program":
    """CRm — a mix of biased, periodic and random branches."""
    b = ProgramBuilder("CRm")
    b.label("loop")

    def pattern(k: int):
        if k % 3 == 0:
            return PatternTaken("TTN")
        if k % 3 == 1:
            return RandomTaken(0.9, seed=700 + k)
        return RandomTaken(0.5, seed=700 + k)

    _branch_field(b, 15, pattern)
    counted_loop(b, "loop", scaled(40, scale))
    return b.build()


def _case_statement(name: str, n_cases: int, seed: int, random_frac: float, iters: int, scale: float) -> "Program":
    """Switch-dispatch kernel: one hot indirect branch, ``n_cases`` arms.

    With a cyclic target sequence a history-based indirect predictor
    captures the dispatch; last-target prediction mispredicts almost
    every arm — the discriminator the paper's CS kernels provide.
    """
    b = ProgramBuilder(name)
    b.label("loop")
    b.indirect(CycleTargets([0]), src=X_ACC)
    ind_inst = b._insts[-1]
    targets = []
    for k in range(n_cases):
        targets.append(b.here())
        b.label(f"case{k}")
        b.op(OpClass.IALU, X_TMP, X_ACC, X_DATA)
        b.op(OpClass.IALU, X_ACC, X_TMP, X_DATA)
        if k + 1 < n_cases:
            b.jump("end")
    b.label("end")
    if random_frac > 0:
        ind_inst.target_pattern = RandomTargets(targets, seed=seed)
    else:
        ind_inst.target_pattern = CycleTargets(targets)
    counted_loop(b, "loop", scaled(iters, scale))
    return b.build()


def _cs1(scale: float) -> "Program":
    """CS1 — small case statement, cyclic dispatch (indirect predictor)."""
    return _case_statement("CS1", 4, 800, 0.0, 150, scale)


def _cs3(scale: float) -> "Program":
    """CS3 — wide case statement with random dispatch."""
    return _case_statement("CS3", 16, 900, 1.0, 150, scale)


CONTROL_BENCHMARKS = [
    Workload("CCa", CATEGORY, _cca.__doc__, _cca, "82K"),
    Workload("CCe", CATEGORY, _cce.__doc__, _cce, "657K"),
    Workload("CCh", CATEGORY, _cch.__doc__, _cch, "2.6M"),
    Workload("CCh_st", CATEGORY, _cch_st.__doc__, _cch_st, "157K"),
    Workload("CCl", CATEGORY, _ccl.__doc__, _ccl, "1.38M"),
    Workload("CCm", CATEGORY, _ccm.__doc__, _ccm, "656K"),
    Workload("CF1", CATEGORY, _cf1.__doc__, _cf1, "1.27M"),
    Workload("CRd", CATEGORY, _crd.__doc__, _crd, "599K"),
    Workload("CRf", CATEGORY, _crf.__doc__, _crf, "133K"),
    Workload("CRm", CATEGORY, _crm.__doc__, _crm, "399K"),
    Workload("CS1", CATEGORY, _cs1.__doc__, _cs1, "58K"),
    Workload("CS3", CATEGORY, _cs3.__doc__, _cs3, "34.5M"),
]
