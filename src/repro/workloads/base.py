"""Workload abstraction shared by microbench and the SPEC proxies."""

from __future__ import annotations

from repro.frontend.interpreter import trace_program
from repro.frontend.program import Program
from repro.trace.record import Trace


class Workload:
    """A named, parameterised program generator with trace caching.

    ``builder(scale, **kwargs)`` must return a fresh
    :class:`~repro.frontend.program.Program`; traces are deterministic,
    so they are cached per ``(scale, kwargs)`` — recorded once, replayed
    for every candidate configuration, exactly the paper's SIFT workflow.
    """

    def __init__(
        self,
        name: str,
        category: str,
        description: str,
        builder,
        paper_instructions: str = "n/a",
        max_instructions: int = 200_000,
        default_kwargs: dict = None,
    ) -> None:
        self.name = name
        self.category = category
        self.description = description
        self.builder = builder
        #: Dynamic instruction count the paper reports for this kernel
        #: (Table I / Table II); ours are scaled down uniformly.
        self.paper_instructions = paper_instructions
        self.max_instructions = max_instructions
        self.default_kwargs = dict(default_kwargs or {})
        self._trace_cache: dict = {}

    def program(self, scale: float = 1.0, **kwargs) -> Program:
        """Build the program at ``scale`` (1.0 = default length)."""
        merged = dict(self.default_kwargs)
        merged.update(kwargs)
        return self.builder(scale, **merged)

    def trace(self, scale: float = 1.0, **kwargs) -> Trace:
        """Record (or fetch the cached) dynamic trace."""
        merged = dict(self.default_kwargs)
        merged.update(kwargs)
        key = (scale, tuple(sorted(merged.items())))
        cached = self._trace_cache.get(key)
        if cached is None:
            program = self.builder(scale, **merged)
            cached = trace_program(program, iterations=1, max_instructions=self.max_instructions)
            # Non-default variants get distinct trace names so hardware
            # measurement caches never conflate them.
            if merged == self.default_kwargs and scale == 1.0:
                cached.name = self.name
            else:
                variant = ",".join(f"{k}={v}" for k, v in sorted(merged.items()))
                cached.name = f"{self.name}[scale={scale},{variant}]"
            self._trace_cache[key] = cached
        return cached

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, category={self.category!r})"
