"""Workloads: targeted micro-benchmarks and SPEC CPU2017 proxies."""

from repro.workloads.base import Workload

__all__ = ["Workload"]
