"""SPEC CPU2017 proxy workloads (Table II).

Eleven C/C++ SPEC CPU2017 applications, each represented by a synthetic
proxy whose mix/working-set/branch signature follows its published
characterisation. Table II's provenance (source file, region-of-interest
line, dynamic instruction count on the board) is kept as metadata.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.spec.generator import SpecProfile, build_spec_proxy

KB = 1024
MB = 1024 * KB

#: Profiles follow each application's dominant behaviour: mcf is
#: pointer-chasing and DRAM-bound; povray/nab are FP; x264/imagick are
#: SIMD-streaming (prefetcher-sensitive); omnetpp/xalancbmk are
#: indirect-branch heavy with large code footprints; deepsjeng/leela are
#: hard-branch integer codes; gcc is code-footprint + branch bound; xz is
#: integer compress/decompress with mid-size random working sets.
SPEC_PROFILES = [
    SpecProfile(
        name="mcf",
        paper_file="psimplex.c",
        paper_line=331,
        paper_instructions="12 Billion",
        frac_load=0.34,
        frac_store=0.07,
        frac_branch=0.17,
        load_windows=((3 * MB, 0.7), (64 * KB, 0.3)),
        chase_frac=0.5,
        chase_window=1536 * KB,
        hard_branch_frac=0.35,
        code_blocks=6,
        iterations=18,
        seed=101,
    ),
    SpecProfile(
        name="povray",
        paper_file="povray.cpp",
        paper_line=258,
        paper_instructions="2.45 Billion",
        frac_load=0.26,
        frac_store=0.09,
        frac_branch=0.14,
        frac_fp=0.30,
        frac_mul=0.01,
        load_windows=((24 * KB, 0.6), (256 * KB, 0.4)),
        streaming=True,
        hard_branch_frac=0.15,
        call_depth=2,
        code_blocks=10,
        iterations=8,
        seed=102,
    ),
    SpecProfile(
        name="omnetpp",
        paper_file="simulator/cmdenv.cc",
        paper_line=268,
        paper_instructions="10.8 Billion",
        frac_load=0.30,
        frac_store=0.10,
        frac_branch=0.16,
        load_windows=((1536 * KB, 0.6), (32 * KB, 0.4)),
        chase_frac=0.35,
        chase_window=768 * KB,
        hard_branch_frac=0.25,
        indirect_frac=0.08,
        indirect_targets=8,
        call_depth=2,
        code_blocks=10,
        iterations=14,
        seed=103,
    ),
    SpecProfile(
        name="xalancbmk",
        paper_file="XalanExe.cpp",
        paper_line=842,
        paper_instructions="443 Million",
        frac_load=0.28,
        frac_store=0.08,
        frac_branch=0.18,
        load_windows=((512 * KB, 0.5), (48 * KB, 0.5)),
        hard_branch_frac=0.2,
        indirect_frac=0.12,
        indirect_targets=12,
        call_depth=2,
        code_blocks=16,
        block_spread=3072,
        iterations=6,
        seed=104,
    ),
    SpecProfile(
        name="deepsjeng",
        paper_file="epd.cpp",
        paper_line=365,
        paper_instructions="14.9 Billion",
        frac_load=0.24,
        frac_store=0.07,
        frac_branch=0.19,
        frac_mul=0.02,
        load_windows=((128 * KB, 0.6), (16 * KB, 0.4)),
        hard_branch_frac=0.45,
        code_blocks=8,
        iterations=9,
        seed=105,
    ),
    SpecProfile(
        name="x264",
        paper_file="x264_src/x264.c",
        paper_line=173,
        paper_instructions="14.8 Billion",
        frac_load=0.28,
        frac_store=0.12,
        frac_branch=0.10,
        frac_simd=0.26,
        load_windows=((1 * MB, 0.7), (32 * KB, 0.3)),
        streaming=True,
        hard_branch_frac=0.1,
        code_blocks=8,
        iterations=8,
        seed=106,
    ),
    SpecProfile(
        name="nab",
        paper_file="nabmd.c",
        paper_line=127,
        paper_instructions="14.2 Billion",
        frac_load=0.25,
        frac_store=0.08,
        frac_branch=0.11,
        frac_fp=0.34,
        load_windows=((384 * KB, 0.7), (16 * KB, 0.3)),
        streaming=True,
        hard_branch_frac=0.08,
        code_blocks=6,
        iterations=9,
        seed=107,
    ),
    SpecProfile(
        name="leela",
        paper_file="Leela.cpp",
        paper_line=62,
        paper_instructions="10.3 Billion",
        frac_load=0.25,
        frac_store=0.08,
        frac_branch=0.18,
        frac_mul=0.02,
        load_windows=((96 * KB, 0.7), (16 * KB, 0.3)),
        hard_branch_frac=0.35,
        call_depth=3,
        code_blocks=8,
        iterations=9,
        seed=108,
    ),
    SpecProfile(
        name="imagick",
        paper_file="wang/mogrify.cpp",
        paper_line=168,
        paper_instructions="13.4 Billion",
        frac_load=0.27,
        frac_store=0.13,
        frac_branch=0.09,
        frac_simd=0.30,
        load_windows=((1536 * KB, 0.8), (16 * KB, 0.2)),
        streaming=True,
        hard_branch_frac=0.05,
        code_blocks=6,
        iterations=12,
        seed=109,
    ),
    SpecProfile(
        name="gcc",
        paper_file="toplev.c",
        paper_line=2461,
        paper_instructions="9 Billion",
        frac_load=0.27,
        frac_store=0.10,
        frac_branch=0.20,
        load_windows=((768 * KB, 0.4), (64 * KB, 0.6)),
        hard_branch_frac=0.3,
        indirect_frac=0.05,
        indirect_targets=10,
        call_depth=2,
        code_blocks=20,
        block_spread=4096,
        iterations=5,
        seed=110,
    ),
    SpecProfile(
        name="xz",
        paper_file="spec_xz.c",
        paper_line=229,
        paper_instructions="10.8 Billion",
        frac_load=0.28,
        frac_store=0.11,
        frac_branch=0.15,
        frac_mul=0.03,
        load_windows=((1536 * KB, 0.45), (64 * KB, 0.55)),
        hard_branch_frac=0.3,
        code_blocks=8,
        iterations=14,
        seed=111,
    ),
]


def _make_workload(profile: SpecProfile) -> Workload:
    def builder(scale: float, _profile=profile) -> "Program":
        return build_spec_proxy(_profile, scale)

    description = (
        f"SPEC CPU2017 {profile.name} proxy (paper ROI: {profile.paper_file}:"
        f"{profile.paper_line}, {profile.paper_instructions} instructions)"
    )
    return Workload(
        profile.name,
        "spec",
        description,
        builder,
        paper_instructions=profile.paper_instructions,
        max_instructions=40_000,
    )


SPEC_BENCHMARKS = [_make_workload(p) for p in SPEC_PROFILES]
SPEC_WORKLOADS = {wl.name: wl for wl in SPEC_BENCHMARKS}


def get_spec_benchmark(name: str) -> Workload:
    """Look up one SPEC proxy by application name (e.g. ``"mcf"``)."""
    try:
        return SPEC_WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown SPEC proxy {name!r}; have {sorted(SPEC_WORKLOADS)}") from None


__all__ = [
    "SpecProfile",
    "SPEC_PROFILES",
    "SPEC_BENCHMARKS",
    "SPEC_WORKLOADS",
    "get_spec_benchmark",
    "build_spec_proxy",
]
