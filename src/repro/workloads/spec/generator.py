"""Synthetic SPEC CPU2017 proxy generator.

Each proxy is a seeded random kernel whose statistical signature —
instruction mix, working-set distribution, pointer-dependence fraction,
branch predictability, indirect-dispatch rate, call depth, code
footprint — follows the published characterisation of the corresponding
SPEC application (Limaye & Adegbija's ISPASS'18 characterisation guided
the profiles). The absolute instruction counts are scaled down ~10^6x
from Table II; the *relative* CPI structure across applications is what
the validation experiment needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.frontend.builder import ProgramBuilder
from repro.frontend.program import (
    ChaseAddr,
    CycleTargets,
    PatternTaken,
    RandomAddr,
    RandomTaken,
    RandomTargets,
    SequentialAddr,
)
from repro.isa.opclasses import OpClass
from repro.isa.registers import fp_reg, int_reg
from repro.workloads.microbench.common import (
    DATA_BASE,
    LINE,
    X_COND,
    X_DATA,
    X_PTR,
    counted_loop,
    init_pages,
    scaled,
)


@dataclass(frozen=True)
class SpecProfile:
    """Statistical signature of one SPEC CPU2017 application."""

    name: str
    #: Table II provenance (file, line, dynamic instructions on hardware).
    paper_file: str
    paper_line: int
    paper_instructions: str
    #: Instruction mix (fractions of dynamic instructions).
    frac_load: float = 0.25
    frac_store: float = 0.08
    frac_branch: float = 0.15
    frac_fp: float = 0.0
    frac_simd: float = 0.0
    frac_mul: float = 0.01
    frac_div: float = 0.0
    #: Working-set mixture for non-dependent loads: (window_bytes, weight).
    load_windows: tuple = ((16 * 1024, 1.0),)
    #: Fraction of loads that are pointer-dependent (chase) accesses.
    chase_frac: float = 0.0
    #: Window for the chase chain.
    chase_window: int = 64 * 1024
    #: Loads walk sequentially (prefetcher-friendly) vs randomly.
    streaming: bool = False
    #: Probability a conditional branch is a hard 50/50 one.
    hard_branch_frac: float = 0.2
    #: Fraction of branches that are indirect dispatches.
    indirect_frac: float = 0.0
    #: Indirect dispatch fan-out (number of targets).
    indirect_targets: int = 8
    #: Call/return pairs per block (RAS pressure).
    call_depth: int = 0
    #: Number of code blocks and their address spread (I-cache footprint).
    code_blocks: int = 8
    block_spread: int = 0
    #: Ops per block body.
    block_ops: int = 48
    #: Outer-loop iterations at scale 1.0.
    iterations: int = 10
    seed: int = 1


def build_spec_proxy(profile: SpecProfile, scale: float = 1.0) -> "Program":
    """Materialise a proxy program from its profile."""
    rng = random.Random(profile.seed)
    b = ProgramBuilder(profile.name)

    store_window = 64 * 1024
    init_pages(b, DATA_BASE, store_window)
    windows = []
    offset = store_window
    for window, weight in profile.load_windows:
        base = DATA_BASE + offset
        init_pages(b, base, window)
        if profile.streaming:
            pattern_factory = lambda base=base, window=window: SequentialAddr(
                base, LINE, window
            )
        else:
            pattern_factory = lambda base=base, window=window: RandomAddr(
                base, window, seed=rng.randrange(1 << 30), align=8
            )
        windows.append((pattern_factory, weight))
        offset += window
    chase_base = DATA_BASE + offset
    if profile.chase_frac > 0:
        init_pages(b, chase_base, profile.chase_window)
    store_pattern = SequentialAddr(DATA_BASE, LINE, store_window)
    total_weight = sum(w for _, w in windows)

    def pick_load_pattern():
        r = rng.random() * total_weight
        for factory, weight in windows:
            r -= weight
            if r <= 0:
                return factory()
        return windows[-1][0]()

    # Pre-plan op kinds for one block.
    def sample_op():
        r = rng.random()
        acc = profile.frac_load
        if r < acc:
            return "load"
        acc += profile.frac_store
        if r < acc:
            return "store"
        acc += profile.frac_branch
        if r < acc:
            return "branch"
        acc += profile.frac_fp
        if r < acc:
            return "fp"
        acc += profile.frac_simd
        if r < acc:
            return "simd"
        acc += profile.frac_mul
        if r < acc:
            return "mul"
        acc += profile.frac_div
        if r < acc:
            return "div"
        return "alu"

    chase = (
        ChaseAddr(chase_base, profile.chase_window // LINE, seed=profile.seed * 7 + 1)
        if profile.chase_frac > 0
        else None
    )

    int_regs = [int_reg(6 + k) for k in range(8)]
    fp_regs = [fp_reg(2 + k) for k in range(8)]
    branch_counter = [0]
    fn_labels = []

    # Helper functions for call/return pressure, emitted ahead of the loop.
    if profile.call_depth > 0:
        b.jump("main-entry")
        for fn in range(4):
            label = f"fn{fn}"
            fn_labels.append(label)
            b.label(label)
            for k in range(4):
                b.op(OpClass.IALU, int_regs[k % len(int_regs)], X_DATA, X_COND)
            b.ret()
        b.label("main-entry")

    b.label("loop")
    for blk in range(profile.code_blocks):
        if blk and profile.block_spread:
            b.org_gap(profile.block_spread)
        b.label(f"blk{blk}")
        if profile.indirect_frac > 0 and rng.random() < profile.indirect_frac * 4:
            # A dispatch site: indirect branch over small case arms.
            arms = profile.indirect_targets
            b.indirect(CycleTargets([0]), src=X_PTR)
            dispatch = b._insts[-1]
            targets = []
            for arm in range(arms):
                targets.append(b.here())
                b.label(f"blk{blk}arm{arm}")
                b.op(OpClass.IALU, int_regs[arm % len(int_regs)], X_DATA, X_COND)
                if arm + 1 < arms:
                    b.jump(f"blk{blk}join")
            b.label(f"blk{blk}join")
            if rng.random() < 0.5:
                dispatch.target_pattern = CycleTargets(targets)
            else:
                dispatch.target_pattern = RandomTargets(targets, seed=rng.randrange(1 << 30))
        for k in range(profile.block_ops):
            kind = sample_op()
            if kind == "load":
                if chase is not None and rng.random() < profile.chase_frac:
                    b.load(X_PTR, chase, base=X_PTR)
                else:
                    b.load(rng.choice(int_regs), pick_load_pattern())
            elif kind == "store":
                b.store(X_DATA, store_pattern)
            elif kind == "branch":
                branch_counter[0] += 1
                tag = f"br{blk}_{branch_counter[0]}"
                if rng.random() < profile.hard_branch_frac:
                    pattern = RandomTaken(0.5, seed=rng.randrange(1 << 30))
                else:
                    pattern = rng.choice(
                        [
                            PatternTaken("TN"),
                            PatternTaken("TTN"),
                            RandomTaken(0.9, seed=rng.randrange(1 << 30)),
                        ]
                    )
                b.branch(tag, pattern, cond_reg=X_COND)
                b.op(OpClass.IALU, rng.choice(int_regs), X_DATA, X_COND)
                b.label(tag)
            elif kind == "fp":
                op = rng.choice([OpClass.FPALU, OpClass.FPMUL, OpClass.FPALU])
                dst = rng.choice(fp_regs)
                b.op(op, dst, rng.choice(fp_regs), rng.choice(fp_regs))
            elif kind == "simd":
                op = rng.choice([OpClass.SIMD_ALU, OpClass.SIMD_MUL])
                b.op(op, rng.choice(fp_regs), rng.choice(fp_regs), rng.choice(fp_regs))
            elif kind == "mul":
                b.op(OpClass.IMUL, rng.choice(int_regs), rng.choice(int_regs), X_DATA)
            elif kind == "div":
                b.op(OpClass.IDIV, rng.choice(int_regs), rng.choice(int_regs), X_DATA)
            else:
                b.op(OpClass.IALU, rng.choice(int_regs), rng.choice(int_regs), X_DATA)
        if profile.call_depth > 0 and fn_labels:
            for _ in range(min(profile.call_depth, 2)):
                b.call(rng.choice(fn_labels))
    counted_loop(b, "loop", scaled(profile.iterations, scale))
    return b.build()
