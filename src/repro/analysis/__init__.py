"""Analysis and reporting: error metrics, ASCII tables and figures."""

from repro.analysis.metrics import ErrorSummary, summarize_errors
from repro.analysis.tables import render_table, render_error_table
from repro.analysis.figures import bar_chart, paired_bar_chart
from repro.analysis.io import load_result_json, save_result_json

__all__ = [
    "ErrorSummary",
    "summarize_errors",
    "render_table",
    "render_error_table",
    "bar_chart",
    "paired_bar_chart",
    "save_result_json",
    "load_result_json",
]
