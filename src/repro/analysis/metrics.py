"""Error-series statistics used by the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics over a per-benchmark error series."""

    count: int
    mean: float
    median: float
    maximum: float
    max_benchmark: str
    geo_mean: float

    def __str__(self) -> str:
        return (
            f"mean {self.mean:.1%}, median {self.median:.1%}, "
            f"max {self.maximum:.1%} ({self.max_benchmark})"
        )


def summarize_errors(errors: dict) -> ErrorSummary:
    """Summarise a ``{benchmark: error}`` series."""
    if not errors:
        raise ValueError("error series is empty")
    values = sorted(errors.values())
    n = len(values)
    median = values[n // 2] if n % 2 else 0.5 * (values[n // 2 - 1] + values[n // 2])
    max_name = max(errors, key=errors.__getitem__)
    # Geometric mean of (1 + error) - 1 tolerates zero entries.
    geo = math.exp(sum(math.log1p(v) for v in values) / n) - 1.0
    return ErrorSummary(
        count=n,
        mean=sum(values) / n,
        median=median,
        maximum=values[-1],
        max_benchmark=max_name,
        geo_mean=geo,
    )


def error_reduction_factor(before: dict, after: dict) -> float:
    """How many times smaller the mean error became (the tuning payoff)."""
    mean_before = sum(before.values()) / len(before)
    mean_after = sum(after.values()) / len(after)
    if mean_after <= 0:
        return float("inf")
    return mean_before / mean_after
