"""Result serialisation.

Campaign artefacts (tuned assignments, per-benchmark error series) are
saved as JSON so the figure benches can regenerate the paper's plots
without re-running tuning, and EXPERIMENTS.md can cite stable numbers.
"""

from __future__ import annotations

import hashlib
import json
import os


def result_fingerprint(payload: dict) -> str:
    """Content hash of a result payload (canonical JSON, sha256).

    Two runs that produced bit-identical results — e.g. an uninterrupted
    campaign and its killed-and-resumed twin — have equal fingerprints;
    any numeric drift changes the hash. Used by the resume tests and the
    CI store round-trip check.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=_coerce)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def save_result_json(path: str, payload: dict) -> None:
    """Write ``payload`` as pretty JSON, creating parent directories."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True, default=_coerce)
        f.write("\n")


def load_result_json(path: str) -> dict:
    """Read a result JSON written by :func:`save_result_json`."""
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def _coerce(value):
    """JSON fallback for numpy scalars and other simple objects."""
    for attr in ("item",):
        if hasattr(value, attr):
            return getattr(value, attr)()
    if isinstance(value, set):
        return sorted(value)
    raise TypeError(f"cannot serialise {type(value).__name__}")
