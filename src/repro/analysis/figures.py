"""ASCII bar charts — the harness's rendering of the paper's figures."""

from __future__ import annotations


def bar_chart(
    series: dict,
    title: str = None,
    width: int = 50,
    clip: float = 1.0,
    fmt: str = "{:.0%}",
) -> str:
    """Horizontal bar chart of a ``{name: value}`` series.

    Values beyond ``clip`` are clipped (marked with ``>``), mirroring the
    paper's figures whose y-axis clips at 100% with callouts.
    """
    if not series:
        raise ValueError("series is empty")
    lines = []
    if title:
        lines.append(title)
    name_w = max(len(n) for n in series)
    for name, value in series.items():
        clipped = min(value, clip)
        bar = "#" * max(0, int(round(width * clipped / clip)))
        marker = ">" if value > clip else ""
        lines.append(f"{name.ljust(name_w)} |{bar}{marker} {fmt.format(value)}")
    mean = sum(series.values()) / len(series)
    lines.append(f"{'AVERAGE'.ljust(name_w)} | {fmt.format(mean)}")
    return "\n".join(lines)


def paired_bar_chart(
    before: dict,
    after: dict,
    labels: tuple = ("not tuned", "tuned"),
    title: str = None,
    width: int = 40,
    clip: float = 1.0,
) -> str:
    """Two series per benchmark (Figure 4's not-tuned/tuned pairs)."""
    lines = []
    if title:
        lines.append(title)
    name_w = max(len(n) for n in before)
    for name in before:
        for label, series, ch in zip(labels, (before, after), ("#", "=")):
            value = series.get(name)
            if value is None:
                continue
            clipped = min(value, clip)
            bar = ch * max(0, int(round(width * clipped / clip)))
            marker = ">" if value > clip else ""
            lines.append(f"{name.ljust(name_w)} {label[:9].ljust(9)} |{bar}{marker} {value:.0%}")
    mean_b = sum(before.values()) / len(before)
    mean_a = sum(after.values()) / len(after)
    lines.append(f"AVERAGE {labels[0]}: {mean_b:.1%}   {labels[1]}: {mean_a:.1%}")
    return "\n".join(lines)
