"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations


def render_table(headers: list, rows: list, title: str = None) -> str:
    """Render an aligned ASCII table.

    ``rows`` contain strings or numbers; floats format to 3 significant
    decimals unless already strings.
    """
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_error_table(errors: dict, title: str = None, extra: dict = None) -> str:
    """Render a ``{benchmark: error}`` series, optionally with a second
    column (e.g. not-tuned vs tuned)."""
    if extra is None:
        headers = ["benchmark", "cpi error"]
        rows = [[name, f"{err:.1%}"] for name, err in errors.items()]
    else:
        headers = ["benchmark", "not tuned", "tuned"]
        rows = [
            [name, f"{errors[name]:.1%}", f"{extra.get(name, float('nan')):.1%}"]
            for name in errors
        ]
    return render_table(headers, rows, title=title)
