"""Tuning-space derivation from the component catalog.

``derive_param_space(core_type, stage)`` expands the per-core layout of
:mod:`repro.components.catalog` — scalar tunables interleaved with
component tuning sites — into the :class:`~repro.tuning.parameters.ParamSpace`
the racing tuner consumes:

- a :class:`TuningSite` becomes one categorical *selector* parameter
  (the slot's tunable component names available at ``stage``, in
  registration order) plus one parameter per slot knob, conditioned on
  the site's selection being non-null for gated knobs — exactly irace's
  conditional-parameter semantics;
- a site whose slot offers fewer than two candidates at ``stage``
  contributes nothing (stage 1 has no indirect predictor to choose);
- a :class:`Scalar` becomes the corresponding ordinal/boolean/
  categorical parameter.

The derived stage-1/stage-2 spaces are value-identical to the
pre-registry hand-written lists (``tests/golden/param_spaces.json``
pins names, kinds, candidate values, order and conditional activation).
"""

from __future__ import annotations

from repro.components.catalog import REGISTRY, Scalar, layout_for
from repro.components.registry import TuningSite
from repro.tuning.parameters import (
    BooleanParam,
    CategoricalParam,
    OrdinalParam,
    ParamSpace,
)


def _make_param(path: str, kind: str, values, condition=None):
    if kind == "boolean":
        return BooleanParam(path, condition=condition)
    if kind == "ordinal":
        return OrdinalParam(path, list(values), condition=condition)
    return CategoricalParam(path, list(values), condition=condition)


def _gate(selector_path: str, null_name: str):
    """Condition: active while the site's selection is not the null
    component (absent assignments count as null, like the hand-written
    ``a.get("l1d.prefetcher", "none") != "none"`` lambdas did)."""
    def condition(assignment, _path=selector_path, _null=null_name):
        return assignment.get(_path, _null) != _null
    return condition


def _expand_site(site: TuningSite, stage: int) -> list:
    """Parameters one tuning site contributes at ``stage``."""
    slot = REGISTRY.slot(site.slot)
    params = []
    selector_path = None
    if slot.selector is not None:
        candidates = slot.tunable_names(stage=stage, restrict=site.components)
        if len(candidates) < 2:
            # Nothing to race here at this stage (e.g. stage 1 has only
            # the null indirect predictor): no selector, no knobs.
            return []
        selector_path = f"{site.section}.{slot.selector}"
        params.append(CategoricalParam(selector_path, candidates))
    for knob in slot.knobs:
        if site.knobs is not None and knob.field not in site.knobs:
            continue
        condition = None
        if knob.gated:
            if selector_path is None or slot.null_name is None:
                raise ValueError(
                    f"slot {slot.name!r}: gated knob {knob.field!r} needs "
                    "a selector and a null component"
                )
            condition = _gate(selector_path, slot.null_name)
        params.append(_make_param(
            f"{site.section}.{knob.field}", knob.kind,
            site.knob_values(knob), condition,
        ))
    return params


def derive_param_space(core_type: str, stage: int = 2) -> ParamSpace:
    """The registry-derived tuning space for one core model."""
    params = []
    for entry in layout_for(core_type):
        if isinstance(entry, TuningSite):
            params.extend(_expand_site(entry, stage))
        else:
            params.append(_make_param(entry.path, entry.kind, entry.values))
    return ParamSpace(params)


def domain_param_names(core_type: str, domain: str, stage: int = 2) -> set:
    """Parameter names belonging to one component-round ``domain``.

    Derived from the same declarations as the space itself: a scalar
    contributes when tagged with ``domain``; a tuning site contributes
    every parameter it expands to. The step-5 component rounds use this
    instead of hand-written path-prefix tuples.
    """
    names: set = set()
    for entry in layout_for(core_type):
        if isinstance(entry, TuningSite):
            if domain in entry.domains:
                names.update(p.name for p in _expand_site(entry, stage))
        elif domain in entry.domains:
            names.add(entry.path)
    return names


#: ``(registry fingerprint, derived digest)`` — the layouts are
#: process-constant code, so the memo only invalidates with the
#: registry (whose own fingerprint cache resets on mutation).
_FINGERPRINT_CACHE = None


def space_fingerprint() -> str:
    """Content hash covering the registry *and* the scalar layouts.

    Builds on :meth:`ComponentRegistry.fingerprint` (which invalidates
    when slots/sites/components are added) and folds in the per-core
    scalar declarations, so a changed candidate list anywhere in the
    tuning space perturbs engine cache keys. Memoised per registry
    state: the hash sits on the engine's key path.
    """
    global _FINGERPRINT_CACHE
    registry_digest = REGISTRY.fingerprint()
    if _FINGERPRINT_CACHE is not None and _FINGERPRINT_CACHE[0] == registry_digest:
        return _FINGERPRINT_CACHE[1]

    import hashlib
    import json

    payload = {
        "registry": registry_digest,
        "layouts": {
            core: [
                entry.describe() if isinstance(entry, Scalar)
                else {"site": entry.describe()}
                for entry in layout_for(core)
            ]
            for core in ("inorder", "ooo")
        },
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
    _FINGERPRINT_CACHE = (registry_digest, digest)
    return digest
