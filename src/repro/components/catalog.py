"""The default component catalog: every declaration in one place.

This module is the "list of all the configuration parameters that
require a best guess ... paired with all the candidate values it could
take" (§III-A step 4) in executable form. It declares:

- the component **slots** (direction predictor, indirect predictor,
  replacement policy, address hash, prefetcher, victim buffer, DRAM
  page policy) with every registered implementation and knob binding;
- the **tuning sites** placing each slot in the config tree, with
  per-site candidate restrictions (the L1I races only none/next-line)
  and knob-value overrides (the L2 prefetch table is larger);
- the **scalar tunables** (latencies, geometry, entry counts) that are
  raced but are not component choices;
- the per-core **layouts** that order all of the above into the exact
  stage-1/stage-2 spaces the paper's campaign races (pinned
  value-identical to the pre-registry hand-written lists by
  ``tests/golden/param_spaces.json``).

Stages follow the §IV-B narrative: stage 1 is the initial model (no
indirect predictor, no GHB), stage 2 adds the step-5 model fixes, and
stage 3 is this reproduction's extension round — the TAGE-lite
predictor, SRRIP replacement, skewed hashing and the stream-filtered
next-N-line prefetcher land there, each registered in this file and
nowhere else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GSharePredictor
from repro.branch.indirect import (
    LastTargetPredictor,
    NoIndirectPredictor,
    TaggedIndirectPredictor,
)
from repro.branch.simple import StaticNotTakenPredictor, StaticTakenPredictor
from repro.branch.tage import TAGEPredictor
from repro.branch.tournament import TournamentPredictor
from repro.components.registry import (
    Component,
    ComponentRegistry,
    Knob,
    Slot,
    TuningSite,
)
from repro.memory.hashing import MaskHash, MersenneHash, SkewHash, XorHash
from repro.memory.prefetcher import (
    GHBPrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    StreamPrefetcher,
    StridePrefetcher,
)
from repro.memory.replacement import (
    ClockPLRU,
    LRUPolicy,
    RandomPolicy,
    SRRIPPolicy,
)
from repro.memory.victim import VictimCache

#: Stage at which this reproduction's extension components unlock
#: (stage 1 = initial model, stage 2 = the paper's step-5 fixes).
EXTENSION_STAGE = 3


@dataclass(frozen=True)
class Scalar:
    """A raced parameter that is not a component choice.

    ``domains`` tags it for the step-5 component rounds (e.g. every
    ``memsys`` scalar is raced by both the memory and store rounds).
    """

    path: str  # dotted config path, e.g. "l1d.hit_latency"
    kind: str  # "ordinal" | "boolean" | "categorical"
    values: tuple = ()
    domains: tuple = ()

    def describe(self) -> dict:
        """Declarative content (JSON-able) for the fingerprint."""
        return {"path": self.path, "kind": self.kind,
                "values": list(self.values), "domains": list(self.domains)}


def _build_registry() -> ComponentRegistry:
    reg = ComponentRegistry()

    # -- direction predictors ------------------------------------------
    direction = reg.add_slot(Slot(
        "direction", selector="predictor",
        knobs=(Knob("predictor_bits", "ordinal", (10, 11, 12, 13, 14),
                    gated=False, summary="table size exponent"),),
        summary="conditional-branch direction predictor",
    ), sections=("branch",))
    direction.register(Component(
        "static-taken", StaticTakenPredictor,
        summary="always predict taken"))
    direction.register(Component(
        "static-nottaken", StaticNotTakenPredictor, tunable=False,
        summary="always predict not-taken (never races: dominated)"))
    direction.register(Component(
        "bimodal", BimodalPredictor, params=(("index_bits", "predictor_bits"),),
        summary="per-PC 2-bit counters"))
    direction.register(Component(
        "gshare", GSharePredictor, params=(("history_bits", "predictor_bits"),),
        summary="global history XOR PC"))
    direction.register(Component(
        "tournament", TournamentPredictor,
        params=(("history_bits", "predictor_bits"),
                ("chooser_bits", "predictor_bits")),
        summary="bimodal + gshare with chooser"))
    direction.register(Component(
        "tage", TAGEPredictor, params=(("table_bits", "predictor_bits"),),
        stage=EXTENSION_STAGE,
        summary="TAGE-lite: tagged geometric-history tables"))

    # -- indirect predictors -------------------------------------------
    indirect = reg.add_slot(Slot(
        "indirect", selector="indirect",
        knobs=(Knob("indirect_entries", "ordinal", (128, 256, 512),
                    summary="target table entries"),
               Knob("indirect_history_bits", "ordinal", (4, 6, 8),
                    summary="path-history length")),
        summary="indirect-branch target predictor",
    ), sections=("branch",))
    indirect.register(Component(
        "none", NoIndirectPredictor, null=True,
        summary="no indirect prediction (initial model)"))
    indirect.register(Component(
        "last-target", LastTargetPredictor,
        params=(("entries", "indirect_entries"),), stage=2,
        summary="last observed target per branch"))
    indirect.register(Component(
        "tagged", TaggedIndirectPredictor,
        params=(("entries", "indirect_entries"),
                ("history_bits", "indirect_history_bits")), stage=2,
        summary="ITTAGE-lite history-tagged targets"))

    # -- replacement policies ------------------------------------------
    replacement = reg.add_slot(Slot(
        "replacement", selector="replacement",
        summary="cache eviction-victim policy",
    ), sections=("l1i", "l1d", "l2"))
    replacement.register(Component(
        "lru", LRUPolicy, summary="true least-recently-used"))
    replacement.register(Component(
        "plru", ClockPLRU, summary="clock (second chance) pseudo-LRU"))
    replacement.register(Component(
        "random", RandomPolicy, summary="seeded uniform random"))
    replacement.register(Component(
        "srrip", SRRIPPolicy, stage=EXTENSION_STAGE,
        summary="scan-resistant re-reference interval prediction"))

    # -- address hashes ------------------------------------------------
    hashing = reg.add_slot(Slot(
        "hashing", selector="hashing",
        summary="set-index hash of the line address",
    ), sections=("l1i", "l1d", "l2"))
    hashing.register(Component(
        "mask", MaskHash, summary="power-of-two mask (textbook modulo)"))
    hashing.register(Component(
        "xor", XorHash, summary="XOR-folded upper bits"))
    hashing.register(Component(
        "mersenne", MersenneHash, summary="Mersenne-prime modulo (Kharbutli)"))
    hashing.register(Component(
        "skew", SkewHash, stage=EXTENSION_STAGE,
        summary="Seznec-style skewed rotate-XOR mixing"))

    # -- prefetchers ---------------------------------------------------
    prefetcher = reg.add_slot(Slot(
        "prefetcher", selector="prefetcher",
        knobs=(Knob("prefetch_degree", "ordinal", (1, 2, 4),
                    summary="lines fetched ahead"),
               Knob("prefetch_table_entries", "ordinal", (16, 32, 64),
                    summary="tracking table entries"),
               Knob("prefetch_on_hit", "boolean",
                    summary="also train/trigger on hits")),
        summary="hardware prefetcher attached to a cache",
    ), sections=("l1i", "l1d", "l2"))
    prefetcher.register(Component(
        "none", NullPrefetcher, null=True, summary="no prefetching"))
    prefetcher.register(Component(
        "nextline", NextLinePrefetcher,
        params=(("degree", "prefetch_degree"),
                ("on_hit", "prefetch_on_hit")),
        summary="sequential next-N-line"))
    prefetcher.register(Component(
        "stride", StridePrefetcher,
        params=(("table_entries", "prefetch_table_entries"),
                ("degree", "prefetch_degree"),
                ("on_hit", "prefetch_on_hit")),
        summary="PC-indexed stride (Fu/Patel)"))
    prefetcher.register(Component(
        "ghb", GHBPrefetcher,
        params=(("buffer_entries", "prefetch_table_entries"),
                ("degree", "prefetch_degree"),
                ("on_hit", "prefetch_on_hit")), stage=2,
        summary="global history buffer delta correlation (Nesbit & Smith)"))
    prefetcher.register(Component(
        "stream", StreamPrefetcher,
        params=(("table_entries", "prefetch_table_entries"),
                ("degree", "prefetch_degree"),
                ("on_hit", "prefetch_on_hit")), stage=EXTENSION_STAGE,
        summary="next-N-line behind a stream-detection filter"))

    # -- victim buffer (structural: enabled by entry count) ------------
    victim = reg.add_slot(Slot(
        "victim",
        knobs=(Knob("victim_entries", "ordinal", (0, 2, 4, 8), gated=False,
                    summary="entries (0 disables the buffer)"),),
        summary="fully-associative victim buffer behind a cache",
    ))
    victim.register(Component(
        "fifo", VictimCache, params=(("entries", "victim_entries"),),
        summary="FIFO victim buffer of evicted lines"))

    # -- DRAM page policy ----------------------------------------------
    page_policy = reg.add_slot(Slot(
        "page-policy", selector="dram_page_policy",
        summary="DRAM row-buffer management policy",
    ), sections=("memsys",))
    page_policy.register(Component(
        "open", summary="rows stay open (page hits are cheap)"))
    page_policy.register(Component(
        "closed", summary="rows close after each access"))

    # -- tuning sites (order here is layout order, see below) ----------
    reg.add_site(TuningSite("direction", "branch", domains=("branch",)))
    reg.add_site(TuningSite("indirect", "branch", domains=("branch",)))
    reg.add_site(TuningSite("hashing", "l1d", domains=("memory", "store")))
    reg.add_site(TuningSite("victim", "l1d", domains=("memory", "store")))
    reg.add_site(TuningSite("replacement", "l1d", domains=("memory", "store")))
    reg.add_site(TuningSite("prefetcher", "l1d", domains=("memory", "store")))
    # The L1I races a deliberately thin slice (and no component round
    # includes it — domains=() — matching the pre-registry spaces).
    reg.add_site(TuningSite("prefetcher", "l1i",
                            components=("none", "nextline"),
                            knobs=("prefetch_degree",),
                            values={"prefetch_degree": (1, 2)}))
    reg.add_site(TuningSite("hashing", "l2", domains=("memory",)))
    reg.add_site(TuningSite("replacement", "l2", domains=("memory",)))
    reg.add_site(TuningSite("prefetcher", "l2",
                            values={"prefetch_table_entries": (64, 128, 256)},
                            domains=("memory",)))
    reg.add_site(TuningSite("page-policy", "memsys",
                            domains=("memory", "store")))
    return reg


#: The process-wide default registry every consumer dispatches through.
REGISTRY = _build_registry()


def _site(slot: str, section: str) -> TuningSite:
    for site in REGISTRY.sites(slot):
        if site.section == section:
            return site
    raise ValueError(f"no tuning site for slot {slot!r} at section {section!r}")


# ----------------------------------------------------------------------
# Scalar tunables and per-core layouts (methodology steps #3/#4)
# ----------------------------------------------------------------------

_MEM = ("memory",)
_MEMSTORE = ("memory", "store")
_EXEC = ("execution",)
_BRANCH = ("branch",)


def _common_layout(l2_latency: tuple, dram_latency: tuple) -> list:
    """Layout entries shared by both core models, in space order.

    Mixes :class:`Scalar` declarations with the registry's
    :class:`TuningSite` placements; stage filtering happens at
    derivation time (:mod:`repro.components.space`).
    """
    return [
        _site("direction", "branch"),
        Scalar("branch.btb_entries", "ordinal", (128, 256, 512, 1024), _BRANCH),
        Scalar("branch.btb_assoc", "ordinal", (1, 2, 4), _BRANCH),
        Scalar("branch.ras_entries", "ordinal", (4, 8, 16, 32), _BRANCH),
        Scalar("branch.btb_miss_penalty", "ordinal", (1, 2, 3, 4), _BRANCH),
        Scalar("execute.imul_latency", "ordinal", (2, 3, 4, 5), _EXEC),
        Scalar("execute.idiv_latency", "ordinal", (4, 6, 8, 12, 16, 20), _EXEC),
        Scalar("execute.fpalu_latency", "ordinal", (2, 3, 4, 5), _EXEC),
        Scalar("execute.fpmul_latency", "ordinal", (3, 4, 5, 6), _EXEC),
        Scalar("execute.fpdiv_latency", "ordinal", (6, 10, 14, 18, 22), _EXEC),
        Scalar("execute.fcvt_latency", "ordinal", (1, 2, 3, 4), _EXEC),
        Scalar("execute.simd_alu_latency", "ordinal", (2, 3, 4), _EXEC),
        Scalar("execute.simd_mul_latency", "ordinal", (3, 4, 5), _EXEC),
        Scalar("l1d.hit_latency", "ordinal", (1, 2, 3, 4), _MEMSTORE),
        _site("hashing", "l1d"),
        Scalar("l1d.serial_tag_data", "boolean", domains=_MEMSTORE),
        Scalar("l1d.mshr_entries", "ordinal", (1, 2, 3, 4, 6, 8, 10), _MEMSTORE),
        _site("victim", "l1d"),
        _site("replacement", "l1d"),
        _site("prefetcher", "l1d"),
        _site("prefetcher", "l1i"),
        Scalar("l2.hit_latency", "ordinal", l2_latency, _MEM),
        Scalar("l2.mshr_entries", "ordinal", (4, 6, 7, 8, 12, 16), _MEM),
        _site("hashing", "l2"),
        _site("replacement", "l2"),
        _site("prefetcher", "l2"),
        Scalar("memsys.store_buffer_entries", "ordinal", (2, 4, 6, 8, 12, 16),
               _MEMSTORE),
        Scalar("memsys.store_coalescing", "boolean", domains=_MEMSTORE),
        Scalar("memsys.dram_latency", "ordinal", dram_latency, _MEMSTORE),
        Scalar("memsys.dram_bandwidth", "ordinal", (1, 2, 4, 8), _MEMSTORE),
        _site("page-policy", "memsys"),
        # The indirect predictor joins the space at stage 2 (step-5 model
        # fix) and is appended last, like the pre-registry list.
        _site("indirect", "branch"),
    ]


def inorder_layout() -> list:
    """Ordered tunables of the in-order (Cortex-A53-like) model."""
    return [
        Scalar("pipeline.frontend_depth", "ordinal", (3, 4, 5, 6)),
        Scalar("branch.mispredict_penalty", "ordinal", (6, 7, 8, 9, 10, 12),
               _BRANCH),
        Scalar("execute.n_ls_pipes", "ordinal", (1, 2), _EXEC),
        Scalar("pipeline.dual_issue_rules", "boolean"),
    ] + _common_layout(
        l2_latency=(11, 12, 13, 14, 15, 16, 17),
        dram_latency=(140, 150, 160, 170, 180, 190, 200),
    )


def ooo_layout() -> list:
    """Ordered tunables of the out-of-order (Cortex-A72-like) model."""
    return [
        Scalar("pipeline.frontend_depth", "ordinal", (8, 9, 11, 13, 15)),
        Scalar("pipeline.rob_size", "ordinal", (64, 96, 128, 160, 192)),
        Scalar("pipeline.iq_size", "ordinal", (24, 36, 48, 60)),
        Scalar("pipeline.ldq_entries", "ordinal", (8, 16, 24)),
        Scalar("pipeline.stq_entries", "ordinal", (8, 12, 16, 24)),
        Scalar("branch.mispredict_penalty", "ordinal", (10, 12, 14, 15, 16, 18),
               _BRANCH),
        Scalar("execute.n_ialu", "ordinal", (1, 2, 3), _EXEC),
        Scalar("execute.n_fpu", "ordinal", (1, 2), _EXEC),
        Scalar("execute.n_ls_pipes", "ordinal", (1, 2), _EXEC),
    ] + _common_layout(
        l2_latency=(14, 16, 18, 20, 22, 24),
        dram_latency=(150, 160, 170, 180, 190, 200, 210, 220),
    )


def layout_for(core_type: str) -> list:
    """Layout lookup by core type ("inorder" / "ooo")."""
    if core_type == "inorder":
        return inorder_layout()
    if core_type == "ooo":
        return ooo_layout()
    raise ValueError(f"unknown core type {core_type!r}")
