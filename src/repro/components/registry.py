"""The self-describing component registry.

The paper's methodology step #4 needs "a list of all the configuration
parameters that require a best guess ... paired with all the candidate
values it could take" — and the simulator needs to *construct* whatever
the tuner picked. Before this module those two views lived apart: four
string ``if``-chains built components while hand-written parameter lists
in ``validation/steps.py`` described them, and every new predictor or
prefetcher meant editing both in lockstep.

Here each pluggable microarchitecture component registers **once** with:

- its ``name`` (the string stored in :class:`~repro.core.config.SimConfig`),
- a ``factory`` plus the binding from factory kwargs to config fields,
- the tuning ``stage`` at which it becomes raceable (the §IV-B staging:
  stage-1 models lack the step-5 model fixes),
- flags (``null`` = the "component absent" choice that gates knobs,
  ``tunable`` = offered to the racing tuner at all).

A :class:`Slot` groups the components competing for one role (direction
predictor, prefetcher, replacement policy, ...) together with the
:class:`Knob` parameters they share; a :class:`TuningSite` places a slot
at a concrete config section (the prefetcher slot appears at ``l1i``,
``l1d`` and ``l2`` with different candidate subsets).  From these
declarations alone the rest of the system derives:

- construction (``registry.build``, behind the legacy ``build_*`` helpers);
- eager :class:`SimConfig` validation of component-name fields, with
  did-you-mean suggestions;
- the stage-1/stage-2 tuning spaces (:mod:`repro.components.space`);
- the ``repro components`` CLI listing and ``tools/check_components.py``;
- a content fingerprint folded into engine cache keys, so persisted
  results invalidate when a component's candidate set changes.
"""

from __future__ import annotations

import difflib
import hashlib
import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Knob:
    """One tunable parameter a slot's components share.

    ``field`` names the :class:`SimConfig` section field the knob binds
    to (e.g. ``prefetch_degree``); ``values`` is the default candidate
    list (a :class:`TuningSite` may override it); ``gated`` knobs are
    active only while the site's selected component is not the null one
    (irace's conditional parameters), while ungated knobs are always
    raced (e.g. ``predictor_bits`` — static predictors just ignore it).
    """

    field: str
    kind: str  # "ordinal" | "categorical" | "boolean"
    values: tuple = ()
    gated: bool = True
    summary: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("ordinal", "categorical", "boolean"):
            raise ValueError(f"unknown knob kind {self.kind!r}")

    def describe(self) -> dict:
        """Declarative content (JSON-able) for listings and fingerprints."""
        return {
            "field": self.field,
            "kind": self.kind,
            "values": list(self.values),
            "gated": self.gated,
            "summary": self.summary,
        }


@dataclass(frozen=True)
class Component:
    """One registered implementation competing for a slot.

    ``params`` is the knob binding: ``((factory_kwarg, config_field),
    ...)`` — construction reads each bound field from the site's config
    section and passes it to ``factory`` under the kwarg name. ``stage``
    is the first tuning stage offering the component (3 = the extended
    space beyond the paper's two rounds). ``null`` marks the "component
    absent" choice whose selection deactivates the slot's gated knobs;
    ``tunable=False`` registers a constructible component the tuner
    never races (e.g. ``static-nottaken``, strictly dominated).
    """

    name: str
    factory: object = None
    params: tuple = ()
    stage: int = 1
    null: bool = False
    tunable: bool = True
    summary: str = ""

    def construct(self, values, **structural):
        """Instantiate via the factory from a field-value mapping.

        ``values`` maps config field names to values (typically a config
        section's ``__dict__`` view); ``structural`` passes through
        non-config constructor arguments (e.g. a hash's ``n_sets``).
        """
        if self.factory is None:
            raise ValueError(f"component {self.name!r} has no factory")
        kwargs = dict(structural)
        for kwarg, fieldname in self.params:
            kwargs[kwarg] = values[fieldname]
        return self.factory(**kwargs)

    def describe(self) -> dict:
        """Declarative content (JSON-able) for listings and fingerprints."""
        return {
            "name": self.name,
            "factory": getattr(self.factory, "__qualname__", None),
            "params": [list(pair) for pair in self.params],
            "stage": self.stage,
            "null": self.null,
            "tunable": self.tunable,
            "summary": self.summary,
        }


class Slot:
    """A component role: the implementations competing for it + knobs.

    ``selector`` names the config field that stores the chosen
    component's name (``None`` for structural slots like the victim
    buffer, which is enabled by an entry count instead of a name).
    """

    def __init__(self, name: str, selector: str = None, knobs=(),
                 summary: str = "") -> None:
        self.name = name
        self.selector = selector
        self.knobs = tuple(knobs)
        self.summary = summary
        self._components: dict = {}  # insertion order = candidate order

    def register(self, component: Component) -> Component:
        """Add one component; registration order fixes candidate order."""
        if component.name in self._components:
            raise ValueError(
                f"slot {self.name!r} already has a component {component.name!r}"
            )
        self._components[component.name] = component
        return component

    def __iter__(self):
        return iter(self._components.values())

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def get(self, name: str) -> Component:
        """Look up a component, with a did-you-mean on unknown names."""
        try:
            return self._components[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.name} component {name!r}; "
                + suggest(name, self.names())
            ) from None

    def names(self) -> list:
        """All registered component names, in registration order."""
        return list(self._components)

    def tunable_names(self, stage: int = 2, restrict=None) -> list:
        """Candidate names the tuner races at ``stage``.

        ``restrict`` (a :class:`TuningSite` refinement) limits the pool
        to an explicit subset, preserving registration order.
        """
        return [
            c.name for c in self._components.values()
            if c.tunable and c.stage <= stage
            and (restrict is None or c.name in restrict)
        ]

    @property
    def null_name(self) -> str:
        """Name of the slot's null component (``None`` if it has none)."""
        for c in self._components.values():
            if c.null:
                return c.name
        return None

    def describe(self) -> dict:
        """Declarative content (JSON-able) for listings and fingerprints."""
        return {
            "name": self.name,
            "selector": self.selector,
            "summary": self.summary,
            "knobs": [k.describe() for k in self.knobs],
            "components": [c.describe() for c in self._components.values()],
        }


@dataclass(frozen=True)
class TuningSite:
    """One config section where a slot's choice is raced.

    ``components`` restricts the candidate pool (``None`` = every
    tunable component of the slot); ``knobs`` restricts which slot knobs
    are raced here; ``values`` overrides per-knob candidate lists (the
    L2 prefetch table is larger than the L1D's). ``domains`` tags the
    site's parameters for the step-5 component rounds (empty = raced
    only in full-space rounds, like the L1I prefetcher today).
    """

    slot: str
    section: str
    components: tuple = None
    knobs: tuple = None
    values: object = field(default=None, hash=False)
    domains: tuple = ()

    def knob_values(self, knob: Knob) -> tuple:
        """Candidate values of ``knob`` at this site."""
        if self.values and knob.field in self.values:
            return tuple(self.values[knob.field])
        return tuple(knob.values)

    def describe(self) -> dict:
        """Declarative content (JSON-able) for listings and fingerprints."""
        return {
            "slot": self.slot,
            "section": self.section,
            "components": list(self.components) if self.components else None,
            "knobs": list(self.knobs) if self.knobs else None,
            "values": {k: list(v) for k, v in (self.values or {}).items()},
            "domains": list(self.domains),
        }


def suggest(value: str, candidates) -> str:
    """A human ``did you mean`` clause for an unknown name."""
    matches = difflib.get_close_matches(str(value), list(candidates), n=3,
                                        cutoff=0.5)
    if matches:
        return "did you mean " + " or ".join(repr(m) for m in matches) + "?"
    return "choose from " + ", ".join(repr(c) for c in candidates)


class ComponentRegistry:
    """All slots, their tuning sites, and the derived identity hash."""

    def __init__(self) -> None:
        self._slots: dict = {}
        self._sites: list = []
        #: ``(section, field) -> slot name`` — every config field that
        #: stores a component name, for eager SimConfig validation.
        self.selector_map: dict = {}
        self._fingerprint = None

    # -- declaration ---------------------------------------------------
    def add_slot(self, slot: Slot, sections=()) -> Slot:
        """Register a slot and the config sections its selector lives in.

        ``sections`` lists *every* section carrying the selector field
        (validation coverage), which may exceed the tuning sites (the
        L1I's replacement field is validated but never raced).
        """
        if slot.name in self._slots:
            raise ValueError(f"duplicate slot {slot.name!r}")
        self._slots[slot.name] = slot
        if slot.selector is not None:
            for section in sections:
                self.selector_map[(section, slot.selector)] = slot.name
        self._fingerprint = None
        return slot

    def add_site(self, site: TuningSite) -> TuningSite:
        """Register one tuning site (slot placement in the space)."""
        self.slot(site.slot)  # raises on unknown slot
        self._sites.append(site)
        self._fingerprint = None
        return site

    # -- lookup --------------------------------------------------------
    def slot(self, name: str) -> Slot:
        """Look up a slot by role name."""
        try:
            return self._slots[name]
        except KeyError:
            raise ValueError(
                f"unknown component slot {name!r}; " + suggest(name, self._slots)
            ) from None

    def slots(self) -> list:
        """All slots, in registration order."""
        return list(self._slots.values())

    def sites(self, slot: str = None) -> list:
        """Tuning sites, optionally filtered to one slot."""
        if slot is None:
            return list(self._sites)
        return [s for s in self._sites if s.slot == slot]

    # -- construction and validation -----------------------------------
    def build(self, slot_name: str, component_name: str, values=None,
              **structural):
        """Construct a component by ``(slot, name)`` from field values."""
        return self.slot(slot_name).get(component_name).construct(
            values or {}, **structural
        )

    def validate_value(self, slot_name: str, value, where: str = "") -> None:
        """Raise ``ValueError`` unless ``value`` names a slot component."""
        slot = self.slot(slot_name)
        if value not in slot:
            prefix = f"{where}: " if where else ""
            raise ValueError(
                f"{prefix}unknown {slot.name} component {value!r}; "
                + suggest(value, slot.names())
            )

    def validate_config(self, config) -> None:
        """Eagerly validate every component-name field of ``config``.

        Called from :meth:`SimConfig.__post_init__`, so a typo like
        ``prefetcher="strid"`` fails at construction time with a
        suggestion instead of deep inside a simulation.
        """
        for (section, fieldname), slot_name in self.selector_map.items():
            value = getattr(getattr(config, section), fieldname)
            self.validate_value(slot_name, value, where=f"{section}.{fieldname}")

    # -- identity ------------------------------------------------------
    def describe(self) -> dict:
        """The registry's full declarative content (JSON-able)."""
        return {
            "slots": [s.describe() for s in self._slots.values()],
            "sites": [s.describe() for s in self._sites],
            "selectors": sorted(
                [section, fieldname, slot]
                for (section, fieldname), slot in self.selector_map.items()
            ),
        }

    def fingerprint(self) -> str:
        """Stable content hash of every declaration in the registry.

        Folded into the engine's simulation cache keys: changing a
        candidate set, a knob binding or a component's registration
        invalidates persisted results that were produced under the old
        declarations (conservative, like a schema version that derives
        itself).
        """
        if self._fingerprint is None:
            payload = json.dumps(self.describe(), sort_keys=True,
                                 separators=(",", ":"))
            self._fingerprint = hashlib.sha256(
                payload.encode("utf-8")
            ).hexdigest()[:16]
        return self._fingerprint
