"""Self-describing component registry (one declaration drives all).

Every pluggable microarchitecture component — direction predictors,
indirect predictors, replacement policies, address hashes, prefetchers,
the victim buffer, the DRAM page policy — registers once in
:mod:`repro.components.catalog` with its name, constructor binding,
candidate values and activation stage. From that single declaration the
system derives construction (the ``build_*`` helpers), eager
:class:`~repro.core.config.SimConfig` validation, the stage-1/stage-2
tuning spaces, the step-5 component-round parameter sets, the
``repro components`` CLI listing, and the fingerprint folded into
engine cache keys. See ``docs/COMPONENTS.md`` for the add-a-component
walkthrough.
"""

from repro.components.catalog import EXTENSION_STAGE, REGISTRY, Scalar, layout_for
from repro.components.registry import (
    Component,
    ComponentRegistry,
    Knob,
    Slot,
    TuningSite,
    suggest,
)
from repro.components.space import (
    derive_param_space,
    domain_param_names,
    space_fingerprint,
)


def build_component(slot: str, name: str, values=None, **structural):
    """Construct a registered component from config field values."""
    return REGISTRY.build(slot, name, values, **structural)


def validate_config_components(config) -> None:
    """Validate every component-name field of ``config`` eagerly."""
    REGISTRY.validate_config(config)


def registry_fingerprint() -> str:
    """Content hash of every component/tunable declaration."""
    return space_fingerprint()


__all__ = [
    "Component",
    "ComponentRegistry",
    "EXTENSION_STAGE",
    "Knob",
    "REGISTRY",
    "Scalar",
    "Slot",
    "TuningSite",
    "build_component",
    "derive_param_space",
    "domain_param_names",
    "layout_for",
    "registry_fingerprint",
    "space_fingerprint",
    "suggest",
    "validate_config_components",
]
